(** The daemon state machine.  Transport (stdin/socket, signals,
    blocking reads) lives in the CLI; this module owns request handling,
    the journal, snapshots, warm-start replay, the bounded queue and
    overload shedding — all driveable in process by tests and the fuzz
    harness. *)

module C = Skipflow_core
module Api = Skipflow_api
module F = Skipflow_frontend
module Json = Skipflow_checks.Json
module Checks = Skipflow_checks.Checks
module Finding = Skipflow_checks.Finding
module P = Protocol
module I = Incremental

type cfg = {
  sv_config : C.Config.t;
  sv_mode : C.Engine.mode;
  sv_roots : string list;
  sv_state_dir : string option;
  sv_snapshot_every : int;
  sv_deadline_ms : int option;
  sv_max_queue : int;
  sv_retry_after_ms : int;
  sv_memo_entries : int;
  sv_timings : bool;
  sv_max_heap_mb : int option;
  sv_restarts : int;
  sv_log : string -> unit;
}

let default_cfg =
  {
    sv_config = C.Config.skipflow;
    sv_mode = C.Engine.Dedup;
    sv_roots = [];
    sv_state_dir = None;
    sv_snapshot_every = 1;
    sv_deadline_ms = None;
    sv_max_queue = 64;
    sv_retry_after_ms = 50;
    sv_memo_entries = 8;
    sv_timings = false;
    sv_max_heap_mb = None;
    sv_restarts = 0;
    sv_log = (fun _ -> ());
  }

(** A journaled response awaiting its request to arrive again. *)
type replay_entry = {
  re_gen : int;  (** generation {e after} the original request *)
  re_digest : string;  (** content hash of the request line *)
  re_ok : bool;
  re_response : string;  (** the exact response line *)
}

type t = {
  cfg : cfg;
  memo : I.Memo.t;
  mutable st : I.state option;
  mutable journal : C.Io.appender option;
  mutable replay : replay_entry list;
  mutable since_snapshot : int;
  mutable shutdown : bool;
  mutable finalized : bool;
  mutable served : int;
  mutable mem_shed : int;  (** requests shed by the memory ceiling *)
  queue : string Queue.t;
}

let generation t = match t.st with Some s -> s.I.generation | None -> 0
let state t = t.st
let wants_shutdown t = t.shutdown
let pending t = Queue.length t.queue

let mode_name = function
  | C.Engine.Dedup -> "dedup"
  | C.Engine.Reference -> "ref"

(* ----------------------------- persistence ---------------------------- *)

let serve_snapshot_kind = "serve-state"
let serve_snapshot_version = 1
let snap_path dir = Filename.concat dir "serve.snap"
let journal_path dir = Filename.concat dir "journal.jsonl"

let digest_line line = Digest.to_hex (Digest.string (String.trim line))

(* restarting under a different analysis configuration silently mixing
   with a snapshot solved under the old one would be exactly the kind of
   skew the fallback machinery exists for — detect it by content hash *)
let config_fingerprint cfg =
  C.Cache.key ~config:cfg.sv_config
    ~scope:
      (Printf.sprintf "serve-config;mode=%s;roots=%s" (mode_name cfg.sv_mode)
         (String.concat "," cfg.sv_roots))
    ~source:""

type serve_frozen = {
  sp_state : string option;  (** {!I.freeze} of the resident state *)
  sp_memo : (string * string) list;
  sp_config_fp : string;
}

let write_snapshot t =
  match t.cfg.sv_state_dir with
  | None -> ()
  | Some dir ->
      let payload =
        Marshal.to_string
          {
            sp_state = Option.map I.freeze t.st;
            sp_memo = I.Memo.entries t.memo;
            sp_config_fp = config_fingerprint t.cfg;
          }
          []
      in
      (match
         C.Snapshot.write ~path:(snap_path dir) ~kind:serve_snapshot_kind
           ~version:serve_snapshot_version payload
       with
      | Ok () -> ()
      | Error e ->
          t.cfg.sv_log
            ("serve snapshot write failed: " ^ C.Snapshot.error_message e));
      t.since_snapshot <- 0

let maybe_snapshot t =
  if t.since_snapshot >= t.cfg.sv_snapshot_every then write_snapshot t

(** Journal lines are [{"schema_version", "journal": {gen, digest, ok,
    response}}]; a torn last line (SIGKILL mid-append) parses as nothing
    and is skipped — losing at most the in-flight request, which the
    client re-sends and the daemon recomputes. *)
let read_journal path =
  match C.Io.read_file path with
  | Error _ -> []
  | Ok contents ->
      List.filter_map
        (fun line ->
          if String.trim line = "" then None
          else
            match Json.of_string line with
            | exception Json.Parse_error _ -> None
            | j -> (
                match
                  (Json.member "schema_version" j, Json.member "journal" j)
                with
                | Some (Json.Int v), Some jr when v = P.schema_version -> (
                    match
                      ( Json.member "gen" jr,
                        Json.member "digest" jr,
                        Json.member "ok" jr,
                        Json.member "response" jr )
                    with
                    | ( Some (Json.Int re_gen),
                        Some (Json.Str re_digest),
                        Some (Json.Bool re_ok),
                        Some resp ) ->
                        Some
                          {
                            re_gen;
                            re_digest;
                            re_ok;
                            re_response = P.response_line resp;
                          }
                    | _ -> None)
                | _ -> None))
        (String.split_on_char '\n' contents)

(* One [write(2)] per line on an O_APPEND descriptor (the {!C.Io}
   appender), so a SIGKILL tears at most the final line; [--durability
   fsync] additionally syncs each line before the response is emitted. *)
let journal_append t ~digest ~ok resp_json =
  match t.journal with
  | None -> ()
  | Some ap -> (
      let line =
        Json.to_compact_string
          (Json.Obj
             [ ("schema_version", Json.Int P.schema_version);
               ( "journal",
                 Json.Obj
                   [ ("gen", Json.Int (generation t));
                     ("digest", Json.Str digest);
                     ("ok", Json.Bool ok);
                     ("response", resp_json);
                   ] );
             ])
      in
      match C.Io.append_line ap line with
      | Ok () -> ()
      | Error e ->
          t.cfg.sv_log ("serve journal append failed: " ^ C.Io.error_message e))

(* ------------------------------ responses ----------------------------- *)

let metrics_json (m : C.Metrics.t) =
  Json.Obj
    [ ("reachable_methods", Json.Int m.C.Metrics.reachable_methods);
      ("type_checks", Json.Int m.C.Metrics.type_checks);
      ("null_checks", Json.Int m.C.Metrics.null_checks);
      ("prim_checks", Json.Int m.C.Metrics.prim_checks);
      ("poly_calls", Json.Int m.C.Metrics.poly_calls);
      ("mono_calls", Json.Int m.C.Metrics.mono_calls);
      ("binary_size", Json.Int m.C.Metrics.binary_size);
      ("flows", Json.Int m.C.Metrics.flows);
      ("instantiated_types", Json.Int m.C.Metrics.instantiated_types);
    ]

let summary_json t ~wall_us (o : I.outcome) =
  let st = o.I.o_state in
  let m = st.I.metrics in
  Json.Obj
    ([ ("analysis", Json.Str (C.Config.name t.cfg.sv_config));
       ("engine", Json.Str (mode_name t.cfg.sv_mode));
       ("strategy", Json.Str (I.strategy_name o.I.o_strategy));
     ]
    @ (match I.strategy_reason o.I.o_strategy with
      | Some reason -> [ ("fallback_reason", Json.Str reason) ]
      | None -> [])
    @ [ ("verified", Json.Bool o.I.o_verified);
        ("generation", Json.Int st.I.generation);
        ("degraded", Json.Bool m.C.Metrics.degraded);
        ("metrics", metrics_json m);
        ("wall_us", Json.Int wall_us);
      ])

let health_json t =
  let reachable, flows =
    match t.st with
    | Some s ->
        (s.I.metrics.C.Metrics.reachable_methods, s.I.metrics.C.Metrics.flows)
    | None -> (0, 0)
  in
  Json.Obj
    [ ("status", Json.Str "ok");
      ("program", Json.Bool (t.st <> None));
      ("generation", Json.Int (generation t));
      ("reachable_methods", Json.Int reachable);
      ("flows", Json.Int flows);
      ("requests_served", Json.Int t.served);
      (* supervisor observability: how many times this daemon has been
         restarted ([serve --supervise] passes the count down), and how
         many requests the memory ceiling has shed *)
      ("restarts", Json.Int t.cfg.sv_restarts);
      ("memory_shed", Json.Int t.mem_shed);
    ]

let profile_json t (st : I.state) =
  let s = C.Engine.stats st.I.engine in
  let counters =
    List.filter
      (fun (name, _) ->
        (* wall-clock counters (["*.wall_us"]) are dropped unless timings
           were asked for: profile output stays byte-comparable *)
        t.cfg.sv_timings || not (Filename.check_suffix name "wall_us"))
      (C.Trace.counters (C.Engine.trace_of st.I.engine))
  in
  Json.Obj
    [ ("analysis", Json.Str (C.Config.name t.cfg.sv_config));
      ("engine", Json.Str (mode_name t.cfg.sv_mode));
      ("generation", Json.Int st.I.generation);
      ( "stats",
        Json.Obj
          [ ("tasks_processed", Json.Int s.C.Engine.tasks_processed);
            ("input_tasks", Json.Int s.C.Engine.input_tasks);
            ("enable_tasks", Json.Int s.C.Engine.enable_tasks);
            ("notify_tasks", Json.Int s.C.Engine.notify_tasks);
            ("dedup_input", Json.Int s.C.Engine.dedup_input);
            ("dedup_enable", Json.Int s.C.Engine.dedup_enable);
            ("dedup_notify", Json.Int s.C.Engine.dedup_notify);
            ("use_edges", Json.Int s.C.Engine.use_edges);
            ("links", Json.Int s.C.Engine.links);
            ("max_queue", Json.Int s.C.Engine.max_queue);
          ] );
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) counters));
    ]

(* ------------------------------ dispatch ------------------------------ *)

(** Run [f] under the facade's exception boundary: the serve counterpart
    of the CLI's "no exception crosses" guarantee. *)
let protected f =
  match Api.protect (fun () -> Ok (f ())) with
  | Ok r -> r
  | Error e -> Error (P.Api_error e)

(** Dispatch one parsed request.  Mutations are computed as candidates
    and committed here — an [Error] return leaves the resident state,
    the memo and the generation exactly as they were (rollback by
    construction). *)
let dispatch t (env : P.envelope) ~deadline_ms ~t0 =
  let config = t.cfg.sv_config and mode = t.cfg.sv_mode in
  let wall_us () =
    if t.cfg.sv_timings then
      (* clamped: a backwards clock step must not report negative time *)
      int_of_float (Float.max 0.0 (Unix.gettimeofday () -. t0) *. 1e6)
    else 0
  in
  let need_state f =
    match t.st with None -> Error P.No_program | Some st -> f st
  in
  let commit (o : I.outcome) =
    let mutated =
      match t.st with
      | Some s -> o.I.o_state.I.generation > s.I.generation
      | None -> true
    in
    if mutated then begin
      t.st <- Some o.I.o_state;
      List.iter (I.Memo.add t.memo) o.I.o_memo_adds;
      t.since_snapshot <- t.since_snapshot + 1
    end;
    (summary_json t ~wall_us:(wall_us ()) o, mutated)
  in
  match env.P.req with
  | P.Shutdown ->
      t.shutdown <- true;
      Ok (Json.Obj [ ("status", Json.Str "shutting_down") ], false)
  | P.Health -> Ok (health_json t, false)
  | P.Profile -> need_state (fun st -> Ok (profile_json t st, false))
  | P.Lint { only } ->
      need_state (fun st ->
          match
            Api.resolve_roots (C.Engine.prog_of st.I.engine) st.I.roots
          with
          | Error e -> Error (P.Api_error e)
          | Ok roots -> (
              match
                Checks.run ?only (Checks.make_ctx ~engine:st.I.engine ~roots)
              with
              | exception Checks.Unknown_check id ->
                  Error (P.Parse_error (Printf.sprintf "unknown check %S" id))
              | findings ->
                  Ok
                    ( Finding.document_to_json ~file:"<resident>"
                        ~analysis:(C.Config.name config) findings,
                      false )))
  | P.Edit { source } -> (
      let r =
        match t.st with
        | None ->
            I.solve_full ~reason:"initial program" ~config ~mode ~deadline_ms
              ~generation:0 ~source ~roots:t.cfg.sv_roots ()
        | Some st -> I.edit ~config ~mode ~deadline_ms ~memo:t.memo st ~source
      in
      match r with Error _ as e -> e | Ok o -> Ok (commit o))
  | P.Analyze { roots } ->
      need_state (fun st ->
          let roots = Option.value ~default:st.I.roots roots in
          match
            I.analyze_roots ~config ~mode ~deadline_ms ~memo:t.memo st ~roots
          with
          | Error _ as e -> e
          | Ok o -> Ok (commit o))

(* ----------------------------- processing ----------------------------- *)

let emit t ~line ~ok resp_json =
  t.served <- t.served + 1;
  journal_append t ~digest:(digest_line line) ~ok resp_json;
  maybe_snapshot t;
  P.response_line resp_json

(* ---------------------------- memory ceiling --------------------------- *)

let heap_mb () =
  (Gc.quick_stat ()).Gc.heap_words * (Sys.word_size / 8) / (1024 * 1024)

(** Graceful degradation before the OOM killer arrives: when the major
    heap crosses [sv_max_heap_mb], drop the cheap-to-recompute state
    first — the memo LRU and the resident trace's event buffer — and
    compact; only if the heap is {e still} over the ceiling is the
    request shed (with the retry hint).  Shed-by-memory responses are
    not journaled, same rationale as queue shedding: memory pressure
    depends on timing, and replay must stay deterministic. *)
let over_ceiling t =
  match t.cfg.sv_max_heap_mb with
  | None -> false
  | Some cap ->
      heap_mb () > cap
      && begin
           I.Memo.clear t.memo;
           (match t.st with
           | Some st -> C.Trace.drop_events (C.Engine.trace_of st.I.engine)
           | None -> ());
           Gc.compact ();
           heap_mb () > cap
         end

(* health and shutdown must stay responsive under memory pressure —
   they allocate almost nothing and are how an operator finds out *)
let sheddable = function
  | P.Health | P.Shutdown -> false
  | P.Edit _ | P.Analyze _ | P.Lint _ | P.Profile -> true

let process t line =
  let t0 = Unix.gettimeofday () in
  if t.shutdown then
    let id = P.request_id line in
    [ emit t ~line ~ok:false (P.response_error ~id P.Shutting_down) ]
  else
    match P.parse_request line with
    | Error err ->
        let id = P.request_id line in
        [ emit t ~line ~ok:false (P.response_error ~id err) ]
    | Ok env when sheddable env.P.req && over_ceiling t ->
        t.mem_shed <- t.mem_shed + 1;
        [ P.response_line
            (P.response_error ~id:env.P.req_id
               (P.Overloaded { retry_after_ms = t.cfg.sv_retry_after_ms }));
        ]
    | Ok env -> (
        let deadline_ms =
          match env.P.req_deadline_ms with
          | Some _ as d -> d
          | None -> t.cfg.sv_deadline_ms
        in
        match protected (fun () -> dispatch t env ~deadline_ms ~t0) with
        | Ok (result, _mutated) ->
            [ emit t ~line ~ok:true (P.response_ok ~id:env.P.req_id result) ]
        | Error err ->
            [ emit t ~line ~ok:false (P.response_error ~id:env.P.req_id err) ])

(** Match an incoming line against the journal: the stored response is
    re-emitted byte for byte, and mutating requests newer than the
    restored snapshot are re-executed (without their deadline — the
    original completed, the replay must too) to catch the resident state
    up.  A digest mismatch means the client's stream diverged from the
    journaled one: drop the replay and serve everything fresh. *)
let try_replay t line =
  match t.replay with
  | [] -> None
  | entry :: rest ->
      if String.equal entry.re_digest (digest_line line) then begin
        t.replay <- rest;
        if entry.re_ok && entry.re_gen > generation t then
          (match P.parse_request line with
          | Ok env ->
              ignore
                (protected (fun () ->
                     dispatch t env ~deadline_ms:None
                       ~t0:(Unix.gettimeofday ())))
          | Error _ -> ());
        (* a replayed shutdown still shuts the daemon down *)
        (match P.parse_request line with
        | Ok { P.req = P.Shutdown; _ } -> t.shutdown <- true
        | _ -> ());
        maybe_snapshot t;
        t.served <- t.served + 1;
        Some [ entry.re_response ]
      end
      else begin
        t.replay <- [];
        None
      end

let handle_line t line =
  if String.trim line = "" then []
  else
    match try_replay t line with
    | Some responses -> responses
    | None -> process t line

(* -------------------------- queue and shedding ------------------------ *)

let submit t line =
  if String.trim line = "" then []
  else if Queue.length t.queue >= t.cfg.sv_max_queue then begin
    (* shed, never block: the overload response is immediate, carries the
       retry hint, and is deliberately NOT journaled — shedding depends
       on arrival timing, so replaying it would bake nondeterminism into
       the journal.  A shed request re-sent after a restart simply
       desynchronizes the replay cursor, which degrades gracefully to
       fresh (deterministic) processing. *)
    [ P.response_line
        (P.response_error ~id:(P.request_id line)
           (P.Overloaded { retry_after_ms = t.cfg.sv_retry_after_ms }));
    ]
  end
  else begin
    Queue.add line t.queue;
    []
  end

let drain_one t =
  match Queue.take_opt t.queue with
  | None -> None
  | Some line -> Some (handle_line t line)

(* ------------------------------ lifecycle ----------------------------- *)

let create ?initial ~resume cfg =
  let t =
    {
      cfg;
      memo = I.Memo.create cfg.sv_memo_entries;
      st = None;
      journal = None;
      replay = [];
      since_snapshot = 0;
      shutdown = false;
      finalized = false;
      served = 0;
      mem_shed = 0;
      queue = Queue.create ();
    }
  in
  Option.iter (fun dir -> ignore (C.Io.mkdir_p dir)) cfg.sv_state_dir;
  (* warm start: snapshot (guarded by CRC, schema version, configuration
     fingerprint, and the Verify certifier — any suspicion falls back to
     a cold start with a warning) plus the journal for replay *)
  if resume then
    Option.iter
      (fun dir ->
        (match
           C.Snapshot.read ~path:(snap_path dir) ~kind:serve_snapshot_kind
             ~version:serve_snapshot_version
         with
        | Error (C.Snapshot.Io _) -> () (* no snapshot yet *)
        | Error e ->
            cfg.sv_log
              ("serve snapshot rejected ("
              ^ C.Snapshot.error_message e
              ^ "); falling back to a cold start")
        | Ok payload -> (
            match (Marshal.from_string payload 0 : serve_frozen) with
            | exception _ ->
                cfg.sv_log "serve snapshot payload undecodable; cold start"
            | sf ->
                if not (String.equal sf.sp_config_fp (config_fingerprint cfg))
                then
                  cfg.sv_log
                    "serve snapshot was written under a different \
                     configuration; cold start"
                else begin
                  (match sf.sp_state with
                  | None -> ()
                  | Some bytes -> (
                      match I.thaw bytes with
                      | Error msg ->
                          cfg.sv_log
                            ("resident state undecodable (" ^ msg
                           ^ "); cold start")
                      | Ok st ->
                          if C.Verify.run st.I.engine = [] then t.st <- Some st
                          else
                            cfg.sv_log
                              "restored engine failed verification; cold \
                               start"));
                  if t.st <> None then
                    (* oldest first, so re-adding restores the LRU order *)
                    List.iter (I.Memo.add t.memo) (List.rev sf.sp_memo)
                end));
        t.replay <- read_journal (journal_path dir))
      cfg.sv_state_dir;
  let initial_result =
    if t.st <> None then Ok () (* the snapshot wins over [initial] *)
    else
      match initial with
      | None -> Ok ()
      | Some src -> (
          let source_text =
            match src with
            | `Text s -> Ok s
            | `File p -> (
                match C.Io.read_file p with
                | Ok s -> Ok s
                | Error e ->
                    Error
                      (Printf.sprintf "cannot read %s: %s" p
                         (C.Io.error_message e)))
          in
          match source_text with
          | Error _ as e -> e
          | Ok source -> (
              match
                I.solve_full ~reason:"initial program" ~config:cfg.sv_config
                  ~mode:cfg.sv_mode ~deadline_ms:None ~generation:0 ~source
                  ~roots:cfg.sv_roots ()
              with
              | Error err -> Error (P.error_message err)
              | Ok o ->
                  t.st <- Some o.I.o_state;
                  List.iter (I.Memo.add t.memo) o.I.o_memo_adds;
                  t.since_snapshot <- t.since_snapshot + 1;
                  Ok ()))
  in
  match initial_result with
  | Error _ as e -> e
  | Ok () ->
      Option.iter
        (fun dir ->
          match C.Io.open_append (journal_path dir) with
          | Ok ap -> t.journal <- Some ap
          | Error e ->
              cfg.sv_log
                ("serve journal open failed (journaling disabled): "
                ^ C.Io.error_message e))
        cfg.sv_state_dir;
      maybe_snapshot t;
      Ok t

let finalize t =
  if not t.finalized then begin
    t.finalized <- true;
    write_snapshot t;
    match t.journal with
    | Some ap ->
        C.Io.close_append ap;
        t.journal <- None
    | None -> ()
  end
