(** JSONL request/response protocol for [skipflow serve].  See the
    interface for the wire format; the design constraints here are that
    parsing never raises, every {!Api.error} variant has a structured
    rendering, and the error objects are byte-compatible with the
    one-shot CLI's [--format json] failure documents. *)

module Api = Skipflow_api
module F = Skipflow_frontend
module Json = Skipflow_checks.Json

let schema_version = 1

type request =
  | Analyze of { roots : string list option }
  | Lint of { only : string list option }
  | Profile
  | Edit of { source : string }
  | Health
  | Shutdown

type envelope = {
  req_id : int option;
  req_deadline_ms : int option;
  req : request;
}

type error =
  | Api_error of Api.error
  | Parse_error of string
  | Unknown_op of string
  | No_program
  | Deadline_exceeded of { deadline_ms : int }
  | Overloaded of { retry_after_ms : int }
  | Shutting_down

let error_kind = function
  | Api_error e -> Api.error_kind e
  | Parse_error _ -> "parse_error"
  | Unknown_op _ -> "unknown_op"
  | No_program -> "no_program"
  | Deadline_exceeded _ -> "deadline_exceeded"
  | Overloaded _ -> "overloaded"
  | Shutting_down -> "shutting_down"

let error_message = function
  | Api_error e -> Api.error_message e
  | Parse_error msg -> "malformed request: " ^ msg
  | Unknown_op op -> Printf.sprintf "unknown op %S" op
  | No_program -> "no program loaded; send an edit request first"
  | Deadline_exceeded { deadline_ms } ->
      Printf.sprintf
        "request exceeded its %dms deadline; resident state rolled back"
        deadline_ms
  | Overloaded { retry_after_ms } ->
      Printf.sprintf "request queue full; retry after %dms" retry_after_ms
  | Shutting_down -> "daemon is shutting down"

(* the CLI's exit-code contract, extended: client mistakes are input
   errors (2), a tripped deadline is the degraded/budget code (3), and
   transient server-side conditions are analysis errors (1) *)
let exit_code_of_error = function
  | Api_error e -> Api.exit_code_of_error e
  | Parse_error _ | Unknown_op _ | No_program -> 2
  | Deadline_exceeded _ -> 3
  | Overloaded _ | Shutting_down -> 1

(* ------------------------------ parsing ------------------------------- *)

let member_str name j =
  match Json.member name j with Some (Json.Str s) -> Some s | _ -> None

let member_int name j =
  match Json.member name j with Some (Json.Int n) -> Some n | _ -> None

(** [None] when absent, [Error] when present but not a string array. *)
let member_str_list name j =
  match Json.member name j with
  | None -> Ok None
  | Some (Json.Arr items) ->
      let rec go acc = function
        | [] -> Ok (Some (List.rev acc))
        | Json.Str s :: rest -> go (s :: acc) rest
        | _ -> Error (Printf.sprintf "%S must be an array of strings" name)
      in
      go [] items
  | Some _ -> Error (Printf.sprintf "%S must be an array of strings" name)

let parse_request line =
  match Json.of_string line with
  | exception Json.Parse_error msg -> Error (Parse_error msg)
  | j -> (
      match Json.member "schema_version" j with
      | Some (Json.Int v) when v <> schema_version ->
          Error
            (Parse_error
               (Printf.sprintf "unsupported schema_version %d (expected %d)" v
                  schema_version))
      | Some (Json.Int _) | None -> (
          let req_id = member_int "id" j in
          let req_deadline_ms = member_int "deadline_ms" j in
          let finish req = Ok { req_id; req_deadline_ms; req } in
          match member_str "op" j with
          | None -> Error (Parse_error "missing \"op\"")
          | Some "analyze" -> (
              match member_str_list "roots" j with
              | Error msg -> Error (Parse_error msg)
              | Ok roots -> finish (Analyze { roots }))
          | Some "lint" -> (
              match member_str_list "only" j with
              | Error msg -> Error (Parse_error msg)
              | Ok only -> finish (Lint { only }))
          | Some "profile" -> finish Profile
          | Some "edit" -> (
              match member_str "source" j with
              | None -> Error (Parse_error "edit: missing \"source\"")
              | Some source -> finish (Edit { source }))
          | Some "health" -> finish Health
          | Some "shutdown" -> finish Shutdown
          | Some op -> Error (Unknown_op op))
      | Some _ -> Error (Parse_error "\"schema_version\" must be an integer"))

(** Best-effort extraction of the request id so error responses can echo
    it even when the request itself is rejected (unknown op, bad field
    types).  [None] when the line is not valid JSON or carries no id. *)
let request_id line =
  match Json.of_string line with
  | exception Json.Parse_error _ -> None
  | j -> member_int "id" j

(* --------------------------- serialization ---------------------------- *)

let api_error_fields (e : Api.error) =
  let diags =
    match e with
    | Api.Compile_error { diags; _ } ->
        [ ( "diags",
            Json.Arr
              (List.map
                 (fun (d : F.Diag.t) ->
                   Json.Obj
                     [ ("line", Json.Int d.F.Diag.pos.F.Lexer.line);
                       ("col", Json.Int d.F.Diag.pos.F.Lexer.col);
                       ("message", Json.Str d.F.Diag.message);
                     ])
                 diags) );
        ]
    | _ -> []
  in
  [ ("kind", Json.Str (Api.error_kind e));
    ("message", Json.Str (Api.error_message e));
    ("exit_code", Json.Int (Api.exit_code_of_error e));
  ]
  @ diags

let api_error_json e =
  Json.Obj
    [ ("schema_version", Json.Int Json.current_schema_version);
      ("error", Json.Obj (api_error_fields e));
    ]

let error_json err =
  let base =
    match err with
    | Api_error e -> api_error_fields e
    | _ ->
        [ ("kind", Json.Str (error_kind err));
          ("message", Json.Str (error_message err));
          ("exit_code", Json.Int (exit_code_of_error err));
        ]
  in
  let extra =
    match err with
    | Overloaded { retry_after_ms } ->
        [ ("retry_after_ms", Json.Int retry_after_ms) ]
    | Deadline_exceeded { deadline_ms } ->
        [ ("deadline_ms", Json.Int deadline_ms) ]
    | _ -> []
  in
  Json.Obj (base @ extra)

let id_field = function Some id -> [ ("id", Json.Int id) ] | None -> []

let response_ok ~id result =
  Json.Obj
    ([ ("schema_version", Json.Int schema_version) ]
    @ id_field id
    @ [ ("ok", Json.Bool true); ("result", result) ])

let response_error ~id err =
  Json.Obj
    ([ ("schema_version", Json.Int schema_version) ]
    @ id_field id
    @ [ ("ok", Json.Bool false); ("error", error_json err) ])

let response_line j = Json.to_compact_string j ^ "\n"
