(** The serve daemon's state machine, transport-agnostic: request lines
    in, response lines out.  The process event loop (stdin/stdout or a
    Unix socket, signals, blocking reads) lives in the CLI; everything
    below is a pure library so the tests and the fuzz harness can drive
    whole sessions — including crash/recovery cycles — in process.

    {b Robustness contract.}  No exception crosses {!handle_line}: every
    failure is a structured {!Protocol.error} response.  Mutations are
    computed on candidates and committed only on success, so a deadline
    trip rolls the resident state back by construction.  Every response
    is appended to a journal (with the request digest and the resulting
    generation) before it is returned, and the resident state plus memo
    are snapshotted atomically every [snapshot_every] mutations — a
    [kill -9] at any point loses at most the in-flight request, and a
    restart with [resume:true] re-emits journaled responses byte for
    byte while re-executing post-snapshot mutations to catch the
    resident state up. *)

module C = Skipflow_core
module Api = Skipflow_api

type cfg = {
  sv_config : C.Config.t;
  sv_mode : C.Engine.mode;
  sv_roots : string list;  (** initial root names; [[]] = static main *)
  sv_state_dir : string option;  (** snapshots + journal; [None] = none *)
  sv_snapshot_every : int;
      (** mutations between snapshots; 1 = after every mutation *)
  sv_deadline_ms : int option;  (** default per-request deadline *)
  sv_max_queue : int;  (** bounded request queue capacity *)
  sv_retry_after_ms : int;  (** the hint shed responses carry *)
  sv_memo_entries : int;  (** memo capacity (solved states) *)
  sv_timings : bool;  (** report wall_us; off = 0, byte-comparable *)
  sv_max_heap_mb : int option;
      (** memory ceiling: past it, memo and trace events are dropped and
          the heap compacted; if still over, mutating requests are shed
          with the retry hint ([health]/[shutdown] always answer).
          Shed-by-memory responses are never journaled. *)
  sv_restarts : int;
      (** how many times the supervisor has restarted this daemon
          (surfaced in [health]; 0 when unsupervised) *)
  sv_log : string -> unit;  (** diagnostics (recovery warnings etc.) *)
}

val default_cfg : cfg
(** skipflow config, dedup engine, main root, no state dir, snapshot
    every mutation, no deadline, queue of 64, retry hint 50ms, 8 memo
    entries, timings off, silent log. *)

type t

val create : ?initial:Api.source -> resume:bool -> cfg -> (t, string) result
(** Start a daemon.  [initial] loads and fully solves a program before
    serving (its errors fail creation — the CLI contract).  With
    [resume:true] and a state dir, the last snapshot is restored (config
    fingerprint, container CRC, schema version and the {!C.Verify}
    certifier all guard it; any suspicion falls back to a cold start
    with a logged warning, never a refusal) and the journal is loaded
    for replay.  A resumed daemon prefers the snapshot over [initial]. *)

val handle_line : t -> string -> string list
(** Process one request line to completion: parse, replay-match,
    dispatch, journal, snapshot; returns the response lines (empty for a
    blank input line).  Never raises. *)

val submit : t -> string -> string list
(** Enqueue a request line, or shed it: when the bounded queue is full
    the returned list carries the {!Protocol.Overloaded} response (with
    the [retry_after_ms] hint) and the line is dropped. *)

val drain_one : t -> string list option
(** Process the oldest queued request ([None] if the queue is empty). *)

val pending : t -> int
val wants_shutdown : t -> bool
(** A [shutdown] request was processed; the loop should {!finalize}. *)

val generation : t -> int
val state : t -> Incremental.state option

val finalize : t -> unit
(** Final snapshot, journal flush and close.  Idempotent. *)
