(** Source spans carried through lowering into the IR.

    A span is the 1-based [line:col] of the first character of the source
    construct an IR element was lowered from.  The IR layer cannot depend
    on the frontend, so this mirrors {!Skipflow_frontend.Lexer.pos}
    structurally; the frontend converts at the boundary.  Spans are
    optional everywhere — programs built directly through
    {!Ssa_builder} (tests, workload generators) simply have none — and
    every consumer (diagnostics, the lint checks) degrades gracefully to
    a span-less rendering. *)

type t = { line : int; col : int }

let make ~line ~col = { line; col }
let equal a b = a.line = b.line && a.col = b.col

(** Position order, for stable diagnostic output. *)
let compare a b =
  match Int.compare a.line b.line with 0 -> Int.compare a.col b.col | c -> c

let pp ppf s = Format.fprintf ppf "%d:%d" s.line s.col

let pp_opt ppf = function
  | Some s -> pp ppf s
  | None -> Format.pp_print_string ppf "?:?"
