(** The whole-program model: classes, fields, methods, and the class
    hierarchy queries the analysis needs ([subtype], virtual-method
    [resolve], field [lookup] — the partial functions [Resolve] and [LookUp]
    of Appendix C).

    A program is built incrementally (by the frontend or by workload
    generators) and then {!freeze}n, which assigns DFS pre/post intervals
    for O(1) subtype tests and precomputes per-class virtual-method and
    field tables.

    The distinguished class [null] always has id 0 (paper, Section 3: "Null
    references are handled as a special type that can be part of any value
    state").  It takes part in value states but not in the hierarchy. *)

open Ids

type field = {
  f_id : Field.t;
  f_name : string;
  f_class : Class.t;  (** declaring class *)
  f_ty : Ty.t;
  f_static : bool;
}

type meth = {
  m_id : Meth.t;
  m_name : string;
  m_class : Class.t;  (** declaring class *)
  m_static : bool;
  m_param_tys : Ty.t list;  (** declared parameter types, receiver excluded *)
  m_ret_ty : Ty.t;
  mutable m_body : Bl.body option;
  m_span : Span.t option;  (** source position of the declaration *)
}

type cls = {
  c_id : Class.t;
  c_name : string;
  c_super : Class.t option;
  c_abstract : bool;
  mutable c_fields : field list;  (** declared fields, declaration order *)
  mutable c_methods : meth list;  (** declared methods, declaration order *)
}

module StrTbl = Hashtbl.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

type frozen = {
  z_classes : cls array;  (** indexed by class id *)
  z_meths : meth array;  (** indexed by method id *)
  z_fields : field array;  (** indexed by field id *)
  z_pre : int array;  (** DFS preorder number per class *)
  z_post : int array;  (** DFS postorder bound per class *)
  z_children : Class.t list array;
  z_vtable : meth StrTbl.t array;
      (** per class: method name -> most specific implementation *)
  z_ftable : field StrTbl.t array;
      (** per class: field name -> declared field (possibly inherited) *)
}

type t = {
  mutable p_classes : cls list;  (** reverse declaration order *)
  mutable p_meths : meth list;
  mutable p_fields : field list;
  class_gen : Class.Gen.t;
  meth_gen : Meth.Gen.t;
  field_gen : Field.Gen.t;
  by_name : cls StrTbl.t;
  arr_elem : Ty.t Class.Tbl.t;
      (** array classes registered by {!array_class}, mapped to their
          element type *)
  mutable frozen : frozen option;
}

let null_class_name = "null"

let create () =
  let p =
    {
      p_classes = [];
      p_meths = [];
      p_fields = [];
      class_gen = Class.Gen.create ();
      meth_gen = Meth.Gen.create ();
      field_gen = Field.Gen.create ();
      by_name = StrTbl.create 64;
      arr_elem = Class.Tbl.create 16;
      frozen = None;
    }
  in
  (* Reserve id 0 for the special null "type". *)
  let null_cls =
    {
      c_id = Class.Gen.fresh p.class_gen;
      c_name = null_class_name;
      c_super = None;
      c_abstract = true;
      c_fields = [];
      c_methods = [];
    }
  in
  assert (Class.to_int null_cls.c_id = 0);
  p.p_classes <- [ null_cls ];
  StrTbl.replace p.by_name null_cls.c_name null_cls;
  p

let null_class : Class.t = Class.of_int 0
let is_null_class c = Class.to_int c = 0

exception Duplicate of string

let invalidate p = p.frozen <- None

(** [declare_class p ~name ~super ~abstract] adds a fresh class.
    @raise Duplicate if [name] is already declared. *)
let declare_class p ~name ?super ?(abstract = false) () =
  if StrTbl.mem p.by_name name then
    raise (Duplicate (Printf.sprintf "class %s declared twice" name));
  invalidate p;
  let c =
    {
      c_id = Class.Gen.fresh p.class_gen;
      c_name = name;
      c_super = super;
      c_abstract = abstract;
      c_fields = [];
      c_methods = [];
    }
  in
  p.p_classes <- c :: p.p_classes;
  StrTbl.replace p.by_name name c;
  c

let declare_field p (c : cls) ~name ~ty ?(static = false) () =
  if List.exists (fun f -> String.equal f.f_name name) c.c_fields then
    raise (Duplicate (Printf.sprintf "field %s.%s declared twice" c.c_name name));
  invalidate p;
  let f =
    {
      f_id = Field.Gen.fresh p.field_gen;
      f_name = name;
      f_class = c.c_id;
      f_ty = ty;
      f_static = static;
    }
  in
  c.c_fields <- c.c_fields @ [ f ];
  p.p_fields <- f :: p.p_fields;
  f

let declare_meth p (c : cls) ?span ~name ~static ~param_tys ~ret_ty () =
  if List.exists (fun m -> String.equal m.m_name name) c.c_methods then
    raise (Duplicate (Printf.sprintf "method %s.%s declared twice" c.c_name name));
  invalidate p;
  let m =
    {
      m_id = Meth.Gen.fresh p.meth_gen;
      m_name = name;
      m_class = c.c_id;
      m_static = static;
      m_param_tys = param_tys;
      m_ret_ty = ret_ty;
      m_body = None;
      m_span = span;
    }
  in
  c.c_methods <- c.c_methods @ [ m ];
  p.p_meths <- m :: p.p_meths;
  m

let set_body (m : meth) body = m.m_body <- Some body

(* ------------------------------------------------------------------ *)
(* Array classes                                                       *)
(* ------------------------------------------------------------------ *)

let elem_field_name = "$elem"

let ty_base_name = function
  | Ty.Int -> "int"
  | Ty.Bool -> "boolean"
  | Ty.Void -> "void"
  | Ty.Null -> "null"
  | Ty.Obj _ -> assert false (* resolved by the caller, needs the name *)

(** [array_class p elem_ty] returns (creating on first use) the class that
    models arrays with element type [elem_ty].

    Array types are ordinary classes named ["T[]"], arranged covariantly:
    [Foo\[\]] extends [Bar\[\]] whenever [Foo] extends [Bar], which mirrors
    Java's array subtyping onto the single-inheritance machinery.  Every
    array class {e declares its own} element pseudo-field [$elem] (of the
    element type), so [LookUp] resolves an array access on a receiver set
    [{Foo\[\]}] to [Foo\[\]]'s own element flow even through a [Bar\[\]]
    reference — one element flow per array type, the abstraction GraalVM's
    typeflow analysis uses.

    Array classes must be registered before {!freeze} (the frontend creates
    them for every array type the program mentions). *)
let rec array_class p (elem_ty : Ty.t) : cls =
  let name =
    (match elem_ty with
    | Ty.Obj c -> (
        match List.find_opt (fun cl -> Class.equal cl.c_id c) p.p_classes with
        | Some cl -> cl.c_name
        | None -> invalid_arg "Program.array_class: unknown element class")
    | t -> ty_base_name t)
    ^ "[]"
  in
  match StrTbl.find_opt p.by_name name with
  | Some c -> c
  | None ->
      let super =
        match elem_ty with
        | Ty.Obj c -> (
            let ecls = List.find (fun cl -> Class.equal cl.c_id c) p.p_classes in
            match ecls.c_super with
            | Some s -> Some (array_class p (Ty.Obj s)).c_id
            | None -> None)
        | _ -> None
      in
      let c = declare_class p ~name ?super () in
      ignore (declare_field p c ~name:elem_field_name ~ty:elem_ty ());
      Class.Tbl.replace p.arr_elem c.c_id elem_ty;
      c

(** Element type of an array class, [None] for ordinary classes. *)
let array_elem_ty p (c : Class.t) = Class.Tbl.find_opt p.arr_elem c

let is_array_class p (c : Class.t) = Class.Tbl.mem p.arr_elem c

(** The [$elem] pseudo-field declared by an array class. *)
let elem_field_of _p (c : cls) =
  List.find (fun f -> String.equal f.f_name elem_field_name) c.c_fields

(* ------------------------------------------------------------------ *)
(* Freezing and hierarchy queries                                      *)
(* ------------------------------------------------------------------ *)

let freeze p =
  match p.frozen with
  | Some z -> z
  | None ->
      let classes = Array.of_list (List.rev p.p_classes) in
      let n = Array.length classes in
      Array.iteri (fun i c -> assert (Class.to_int c.c_id = i)) classes;
      let meths = Array.of_list (List.rev p.p_meths) in
      Array.iteri (fun i m -> assert (Meth.to_int m.m_id = i)) meths;
      let fields = Array.of_list (List.rev p.p_fields) in
      Array.iteri (fun i f -> assert (Field.to_int f.f_id = i)) fields;
      let children = Array.make n [] in
      Array.iter
        (fun c ->
          match c.c_super with
          | Some s ->
              let si = Class.to_int s in
              children.(si) <- c.c_id :: children.(si)
          | None -> ())
        classes;
      (* keep children in declaration order for determinism *)
      Array.iteri (fun i l -> children.(i) <- List.rev l) children;
      let pre = Array.make n 0 and post = Array.make n 0 in
      let counter = ref 0 in
      let rec dfs (c : Class.t) =
        let i = Class.to_int c in
        incr counter;
        pre.(i) <- !counter;
        List.iter dfs children.(i);
        post.(i) <- !counter
      in
      Array.iter (fun c -> if c.c_super = None then dfs c.c_id) classes;
      let vtable = Array.make n (StrTbl.create 0) in
      let ftable = Array.make n (StrTbl.create 0) in
      let rec fill (c : Class.t) ~(vt : meth StrTbl.t) ~(ft : field StrTbl.t) =
        let i = Class.to_int c in
        let cls = classes.(i) in
        let vt = StrTbl.copy vt and ft = StrTbl.copy ft in
        List.iter (fun m -> if not m.m_static then StrTbl.replace vt m.m_name m) cls.c_methods;
        List.iter (fun f -> StrTbl.replace ft f.f_name f) cls.c_fields;
        vtable.(i) <- vt;
        ftable.(i) <- ft;
        List.iter (fun ch -> fill ch ~vt ~ft) children.(i)
      in
      Array.iter
        (fun c ->
          if c.c_super = None then
            fill c.c_id ~vt:(StrTbl.create 8) ~ft:(StrTbl.create 8))
        classes;
      let z =
        {
          z_classes = classes;
          z_meths = meths;
          z_fields = fields;
          z_pre = pre;
          z_post = post;
          z_children = children;
          z_vtable = vtable;
          z_ftable = ftable;
        }
      in
      p.frozen <- Some z;
      z

let num_classes p = Class.Gen.count p.class_gen
let num_meths p = Meth.Gen.count p.meth_gen
let num_fields p = Field.Gen.count p.field_gen
let cls p (c : Class.t) = (freeze p).z_classes.(Class.to_int c)
let meth p (m : Meth.t) = (freeze p).z_meths.(Meth.to_int m)
let field p (f : Field.t) = (freeze p).z_fields.(Field.to_int f)
let find_class p name = StrTbl.find_opt p.by_name name

let find_meth _p (c : cls) name =
  List.find_opt (fun m -> String.equal m.m_name name) c.c_methods

let class_name p c = (cls p c).c_name
let meth_name p m = (meth p m).m_name

(** Qualified ["Class.method"] name, used in reports and tests. *)
let qualified_name p (m : Meth.t) =
  let mi = meth p m in
  class_name p mi.m_class ^ "." ^ mi.m_name

let qualified_field_name p (f : Field.t) =
  let fi = field p f in
  class_name p fi.f_class ^ "." ^ fi.f_name

(** [subtype p ~sub ~sup] tests [sub <: sup] between proper classes
    (reflexive).  The null class is handled by callers explicitly: it is
    assignable to any object type but fails [instanceof]. *)
let subtype p ~sub ~sup =
  let z = freeze p in
  let a = Class.to_int sub and b = Class.to_int sup in
  z.z_pre.(b) <= z.z_pre.(a) && z.z_post.(a) <= z.z_post.(b)

(** All subtypes of [c] (including [c] itself), in DFS order. *)
let all_subtypes p (c : Class.t) =
  let z = freeze p in
  let rec go c acc =
    let acc = c :: acc in
    List.fold_left (fun acc ch -> go ch acc) acc z.z_children.(Class.to_int c)
  in
  List.rev (go c [])

(** Non-abstract subtypes of [c] (including [c] itself when concrete):
    the set of types that can actually be instantiated with declared type
    [c]. *)
let concrete_subtypes p (c : Class.t) =
  List.filter (fun c -> not (cls p c).c_abstract) (all_subtypes p c)

(** [resolve p ~recv_cls ~target] is [Resolve(t, m)] of Appendix C: the
    implementation of [target] selected for a receiver of dynamic type
    [recv_cls], found by walking the class hierarchy upwards from
    [recv_cls].  Returns [None] for the null class or when no
    implementation exists (ill-typed call or abstract method with no
    override on this path). *)
let resolve p ~(recv_cls : Class.t) ~(target : Meth.t) =
  if is_null_class recv_cls then None
  else
    let z = freeze p in
    let name = (meth p target).m_name in
    StrTbl.find_opt z.z_vtable.(Class.to_int recv_cls) name

(** [resolve_by_name p ~recv_cls ~name] finds the most specific
    implementation of the virtual method [name] visible from [recv_cls]
    (used by the type checker, which has a name rather than a method id). *)
let resolve_by_name p ~(recv_cls : Class.t) ~name =
  if is_null_class recv_cls then None
  else StrTbl.find_opt (freeze p).z_vtable.(Class.to_int recv_cls) name

(** [lookup_field_by_name p ~recv_cls ~name] finds the declared field
    reached by name from [recv_cls], walking up the hierarchy. *)
let lookup_field_by_name p ~(recv_cls : Class.t) ~name =
  if is_null_class recv_cls then None
  else StrTbl.find_opt (freeze p).z_ftable.(Class.to_int recv_cls) name

(** [lookup_field p ~recv_cls ~field] is [LookUp(t, x)] of Appendix C:
    the declared field reached by name [x] from class [recv_cls].  With
    single inheritance and no shadowing this is the field's declaration
    itself whenever [recv_cls <: field.f_class]. *)
let lookup_field p ~(recv_cls : Class.t) ~(field : Field.t) =
  if is_null_class recv_cls then None
  else
    let z = freeze p in
    let name = (freeze p).z_fields.(Field.to_int field).f_name in
    StrTbl.find_opt z.z_ftable.(Class.to_int recv_cls) name

let iter_classes p f = Array.iter f (freeze p).z_classes
let iter_meths p f = Array.iter f (freeze p).z_meths
let iter_fields p f = Array.iter f (freeze p).z_fields

(** Total instruction count over all method bodies (used as denominator in
    size reports). *)
let total_size p =
  let acc = ref 0 in
  iter_meths p (fun m ->
      match m.m_body with Some b -> acc := !acc + Bl.size b | None -> ());
  !acc

let pp_ty p ppf t = Ty.pp ~class_name:(class_name p) ppf t
