(** On-the-fly SSA construction for base-language method bodies, in the
    sealed-block style of Braun et al. (CC'13).  The paper assumes SSA
    input (Section 4); this is the substrate providing it.

    Protocol: create the builder with the method parameters; create blocks
    and emit instructions; read/write named source-level locals (phis are
    introduced automatically at merges); {!seal} merge blocks once all
    their predecessors exist (loop headers after the back edge);
    {!terminate} every block; {!finish}. *)

open Ids

type t

val create : params:(string * Ty.t) list -> t
(** Start a body whose entry defines one parameter per [(name, ty)]; for
    instance methods the receiver must be included first. *)

val entry_block : t -> Bl.block
val label_block : t -> Bl.block
val merge_block : t -> Bl.block

val fresh_var : t -> Ty.t -> Var.t
val add_insn : t -> Bl.block -> Bl.insn -> unit
val write_var : t -> Bl.block -> string -> Var.t -> unit

val set_span : t -> Span.t option -> unit
(** Source span attached to subsequently emitted instructions and
    terminators ([None] until set; generated bodies never set it). *)

val mark_branch : t -> Bl.block -> swapped:bool -> synthetic:bool -> unit
(** Record condition-normalization facts about a block's [If] terminator:
    [swapped] — the IR then-successor is the source else-branch;
    [synthetic] — the condition was a lowering-introduced literal boolean.
    @raise Invalid_argument if the block's terminator is not an [If]. *)

val read_var : t -> Bl.block -> string -> ty:Ty.t -> Var.t
(** Current SSA value of a named local at this block, creating phis where
    definitions merge.  @raise Invalid_argument if undefined on some
    path. *)

val seal : t -> Bl.block -> unit
(** Declare all predecessors known; completes the block's pending phis. *)

val terminate : t -> Bl.block -> Bl.terminator -> unit
(** Sets the terminator and registers predecessor edges; enforces the
    jump-to-merge / if-to-label block discipline. *)

(** {2 Instruction helpers} (emit and return the defined variable) *)

val assign : t -> Bl.block -> ty:Ty.t -> Bl.expr -> Var.t
val const : t -> Bl.block -> int -> Var.t
val null : t -> Bl.block -> Var.t
val new_ : t -> Bl.block -> Class.t -> Var.t
val arith : t -> Bl.block -> Bl.arith_op -> Var.t -> Var.t -> Var.t
val new_arr : t -> Bl.block -> Class.t -> Var.t -> Var.t
val load : t -> Bl.block -> ty:Ty.t -> recv:Var.t -> field:Field.t -> Var.t
val store : t -> Bl.block -> recv:Var.t -> field:Field.t -> src:Var.t -> unit
val arr_load : t -> Bl.block -> ty:Ty.t -> arr:Var.t -> idx:Var.t -> elem:Field.t -> Var.t
val arr_store : t -> Bl.block -> arr:Var.t -> idx:Var.t -> src:Var.t -> elem:Field.t -> unit
val arr_len : t -> Bl.block -> arr:Var.t -> Var.t
val cast : t -> Bl.block -> cls:Class.t -> src:Var.t -> Var.t
val load_static : t -> Bl.block -> ty:Ty.t -> field:Field.t -> Var.t
val store_static : t -> Bl.block -> field:Field.t -> src:Var.t -> unit

val invoke :
  t ->
  Bl.block ->
  ty:Ty.t ->
  recv:Var.t option ->
  target:Meth.t ->
  args:Var.t list ->
  virtual_:bool ->
  Var.t

val finish : t -> Bl.body
(** @raise Invalid_argument if a block is unsealed or unterminated. *)
