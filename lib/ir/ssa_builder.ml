(** On-the-fly SSA construction for base-language method bodies.

    The paper assumes its input "is a Java-like managed base language in
    static single assignment form" (Section 4); in GraalVM that form is
    provided by the compiler.  This module is the substrate that provides it
    here: a sealed-block SSA builder in the style of Braun et al. (CC'13).
    Frontend lowering and the workload generators construct method bodies
    through this API and obtain valid SSA with the block-shape constraints
    of Appendix B.1 (phis only in merge blocks, no critical edges).

    Protocol:
    - create the builder with the method's parameters;
    - create blocks with {!label_block} / {!merge_block}, emit instructions
      into them, and connect them with {!terminate};
    - read and write named source-level locals with {!read_var} /
      {!write_var}; phi instructions are introduced automatically at merge
      blocks when a local has several reaching definitions;
    - {!seal} every merge block once all of its predecessors are known
      (loop headers are sealed after the back edge is added);
    - {!finish} validates bookkeeping and returns the {!Bl.body}.

    Trivial phis (all operands equal, or equal up to a self-reference) are
    left in place: they are semantically identity joins, which the analysis
    treats as precision-neutral [phi] flows, and removing them would require
    use-list rewriting that the paper's algorithm does not depend on. *)

open Ids

type block_state = {
  blk : Bl.block;
  defs : (string, Var.t) Hashtbl.t;
  mutable sealed : bool;
  mutable incomplete : (string * Ty.t * Bl.phi) list;
}

type t = {
  block_gen : Block.Gen.t;
  var_gen : Var.Gen.t;
  mutable states : block_state list;  (** reverse creation order *)
  by_id : block_state Block.Tbl.t;
  entry : block_state;
  mutable params : Var.t list;
  mutable tys_rev : Ty.t list;  (** reverse var-creation order *)
  mutable cur_span : Span.t option;
      (** source span attached to subsequently emitted instructions and
          terminators; set by the frontend lowering, [None] for generated
          bodies *)
}

let fresh_var b ty =
  let v = Var.Gen.fresh b.var_gen in
  b.tys_rev <- ty :: b.tys_rev;
  v

let mk_block b kind =
  let blk : Bl.block =
    {
      b_id = Block.Gen.fresh b.block_gen;
      b_kind = kind;
      b_phis = [];
      b_insns = [];
      b_term = None;
      b_preds = [];
      b_spans = [];
      b_term_span = None;
      b_term_swapped = false;
      b_term_synthetic = false;
    }
  in
  let st = { blk; defs = Hashtbl.create 8; sealed = false; incomplete = [] } in
  b.states <- st :: b.states;
  Block.Tbl.replace b.by_id blk.b_id st;
  st

(** [create ~params] starts a new method body whose entry block defines one
    parameter variable per [(name, ty)] pair (the receiver, if any, must be
    included by the caller as the first parameter). *)
let create ~params =
  let block_gen = Block.Gen.create () in
  let entry_blk : Bl.block =
    {
      b_id = Block.Gen.fresh block_gen;
      b_kind = Bl.Entry;
      b_phis = [];
      b_insns = [];
      b_term = None;
      b_preds = [];
      b_spans = [];
      b_term_span = None;
      b_term_swapped = false;
      b_term_synthetic = false;
    }
  in
  let entry =
    { blk = entry_blk; defs = Hashtbl.create 8; sealed = true; incomplete = [] }
  in
  let b =
    {
      block_gen;
      var_gen = Var.Gen.create ();
      states = [ entry ];
      by_id = Block.Tbl.create 16;
      entry;
      params = [];
      tys_rev = [];
      cur_span = None;
    }
  in
  Block.Tbl.replace b.by_id entry_blk.b_id entry;
  b.params <-
    List.map
      (fun (name, ty) ->
        let v = fresh_var b ty in
        Hashtbl.replace entry.defs name v;
        v)
      params;
  b

let entry_block b = b.entry.blk
let label_block b = (mk_block b Bl.Label).blk
let merge_block b = (mk_block b Bl.Merge).blk
let state b (blk : Bl.block) = Block.Tbl.find b.by_id blk.b_id

(** [set_span b sp] attaches [sp] to every instruction and terminator
    emitted until the next call; the frontend sets it from the source
    position of the construct being lowered. *)
let set_span b sp = b.cur_span <- sp

let add_insn b (blk : Bl.block) insn =
  assert (blk.b_term = None);
  blk.b_insns <- insn :: blk.b_insns;
  blk.b_spans <- b.cur_span :: blk.b_spans

(* -------------------- variable reads/writes (Braun) ------------------- *)

let write_var b (blk : Bl.block) name v = Hashtbl.replace (state b blk).defs name v

let new_phi b (st : block_state) ty =
  let v = fresh_var b ty in
  let phi : Bl.phi = { phi_var = v; phi_args = [] } in
  st.blk.b_phis <- st.blk.b_phis @ [ phi ];
  phi

let rec read_var b (blk : Bl.block) name ~ty =
  let st = state b blk in
  match Hashtbl.find_opt st.defs name with
  | Some v -> v
  | None -> read_var_recursive b st name ~ty

and read_var_recursive b st name ~ty =
  if not st.sealed then begin
    (* Incomplete CFG (typically a loop header before its back edge):
       introduce an operandless phi, completed at seal time. *)
    assert (st.blk.b_kind = Bl.Merge);
    let phi = new_phi b st ty in
    st.incomplete <- (name, ty, phi) :: st.incomplete;
    Hashtbl.replace st.defs name phi.phi_var;
    phi.phi_var
  end
  else
    match st.blk.b_preds with
    | [] ->
        invalid_arg
          (Printf.sprintf "Ssa_builder.read_var: %s undefined at entry" name)
    | [ p ] ->
        let v = read_var b (Block.Tbl.find b.by_id p).blk name ~ty in
        Hashtbl.replace st.defs name v;
        v
    | preds ->
        assert (st.blk.b_kind = Bl.Merge);
        let phi = new_phi b st ty in
        (* Break cycles: record the phi as the definition before reading
           the predecessors. *)
        Hashtbl.replace st.defs name phi.phi_var;
        add_phi_operands b phi name ~ty preds;
        (* Trivial-phi elimination, conservative variant: the phi was just
           created and handed out to nobody, so if all operands are one
           identical non-self variable we can drop it on the spot.  (Loop
           phis have a self-operand and are kept; Braun's full use-rewriting
           removal is not needed for correctness — a residual phi is an
           identity join.) *)
        let ops = List.map snd phi.Bl.phi_args in
        (match ops with
        | first :: rest
          when (not (Ids.Var.equal first phi.phi_var))
               && List.for_all (Ids.Var.equal first) rest ->
            st.blk.b_phis <-
              List.filter (fun (p : Bl.phi) -> p != phi) st.blk.b_phis;
            Hashtbl.replace st.defs name first;
            first
        | _ -> phi.phi_var)

and add_phi_operands b (phi : Bl.phi) name ~ty preds =
  phi.phi_args <-
    List.map
      (fun p -> (p, read_var b (Block.Tbl.find b.by_id p).blk name ~ty))
      preds

(** [seal b blk] declares that all predecessors of [blk] have been added;
    phis created while the block was open receive their operands now. *)
let seal b (blk : Bl.block) =
  let st = state b blk in
  if not st.sealed then begin
    st.sealed <- true;
    List.iter
      (fun (name, ty, phi) -> add_phi_operands b phi name ~ty st.blk.b_preds)
      (List.rev st.incomplete);
    st.incomplete <- []
  end

(* ------------------------------ terminators --------------------------- *)

let add_pred b (target : Block.t) (src : Block.t) =
  let tst = Block.Tbl.find b.by_id target in
  if tst.sealed && tst.blk.b_kind = Bl.Merge then
    invalid_arg "Ssa_builder: adding a predecessor to a sealed merge block";
  tst.blk.b_preds <- tst.blk.b_preds @ [ src ]

let terminate b (blk : Bl.block) (term : Bl.terminator) =
  if blk.b_term <> None then invalid_arg "Ssa_builder.terminate: already terminated";
  (match term with
  | Bl.Jump t ->
      let tst = Block.Tbl.find b.by_id t in
      if tst.blk.b_kind <> Bl.Merge then
        invalid_arg "Ssa_builder: jump target must be a merge block";
      add_pred b t blk.b_id
  | Bl.If { then_; else_; _ } ->
      List.iter
        (fun t ->
          let tst = Block.Tbl.find b.by_id t in
          if tst.blk.b_kind <> Bl.Label then
            invalid_arg "Ssa_builder: if targets must be label blocks";
          add_pred b t blk.b_id;
          (* A label block has exactly one predecessor; it is complete now. *)
          tst.sealed <- true)
        [ then_; else_ ]
  | Bl.Return _ | Bl.Throw _ -> ());
  blk.b_term <- Some term;
  blk.b_term_span <- b.cur_span

(** [mark_branch b blk ~swapped ~synthetic] records how lowering produced
    [blk]'s [If] terminator: [swapped] when condition normalization
    exchanged the branch targets (so the IR then-successor is the source
    else-branch), [synthetic] when the condition was a literal boolean the
    frontend introduced (block wrappers, [while (true)] headers).  Clients
    that report dead branches need both to speak in source terms. *)
let mark_branch _b (blk : Bl.block) ~swapped ~synthetic =
  (match blk.b_term with
  | Some (Bl.If _) -> ()
  | _ -> invalid_arg "Ssa_builder.mark_branch: block has no If terminator");
  blk.b_term_swapped <- swapped;
  blk.b_term_synthetic <- synthetic

(* --------------------------- emit helpers ----------------------------- *)

let assign b blk ~ty e =
  let v = fresh_var b ty in
  add_insn b blk (Bl.Assign (v, e));
  v

let const b blk n = assign b blk ~ty:Ty.Int (Bl.Const n)
let null b blk = assign b blk ~ty:Ty.Null Bl.Null
let new_ b blk cls_id = assign b blk ~ty:(Ty.Obj cls_id) (Bl.New cls_id)

let arith b blk op x y = assign b blk ~ty:Ty.Int (Bl.Arith (op, x, y))
let new_arr b blk cls_id len = assign b blk ~ty:(Ty.Obj cls_id) (Bl.NewArr (cls_id, len))

let arr_load b blk ~ty ~arr ~idx ~elem =
  let v = fresh_var b ty in
  add_insn b blk (Bl.ArrLoad { dst = v; arr; idx; elem });
  v

let arr_store b blk ~arr ~idx ~src ~elem =
  add_insn b blk (Bl.ArrStore { arr; idx; src; elem })

let arr_len b blk ~arr =
  let v = fresh_var b Ty.Int in
  add_insn b blk (Bl.ArrLen { dst = v; arr });
  v

let cast b blk ~cls ~src =
  let v = fresh_var b (Ty.Obj cls) in
  add_insn b blk (Bl.Cast { dst = v; src; cls });
  v

let load_static b blk ~ty ~field =
  let v = fresh_var b ty in
  add_insn b blk (Bl.LoadStatic { dst = v; field });
  v

let store_static b blk ~field ~src = add_insn b blk (Bl.StoreStatic { field; src })

let load b blk ~ty ~recv ~field =
  let v = fresh_var b ty in
  add_insn b blk (Bl.Load { dst = v; recv; field });
  v

let store b blk ~recv ~field ~src = add_insn b blk (Bl.Store { recv; field; src })

let invoke b blk ~ty ~recv ~target ~args ~virtual_ =
  let v = fresh_var b ty in
  add_insn b blk (Bl.Invoke { dst = v; recv; target; args; virtual_ });
  v

(* ------------------------------ finish -------------------------------- *)

let finish b : Bl.body =
  let states = List.rev b.states in
  List.iter
    (fun st ->
      if not st.sealed then
        invalid_arg
          (Printf.sprintf "Ssa_builder.finish: block %d is not sealed"
             (Block.to_int st.blk.b_id));
      if st.blk.b_term = None then
        invalid_arg
          (Printf.sprintf "Ssa_builder.finish: block %d has no terminator"
             (Block.to_int st.blk.b_id));
      st.blk.b_insns <- List.rev st.blk.b_insns;
      st.blk.b_spans <- List.rev st.blk.b_spans)
    states;
  let blocks = Array.of_list (List.map (fun st -> st.blk) states) in
  Array.iteri (fun i blk -> assert (Block.to_int blk.Bl.b_id = i)) blocks;
  {
    Bl.params = b.params;
    entry = b.entry.blk.b_id;
    blocks;
    var_count = Var.Gen.count b.var_gen;
    var_tys = Array.of_list (List.rev_map Ty.lower b.tys_rev);
  }
