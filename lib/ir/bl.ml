(** The base language of the analysis (paper, Appendix B.1, Figure 10).

    A method body is a control-flow graph of basic blocks in SSA form.  The
    shape constraints of the paper are enforced by {!Validate}:

    - every block is an {e entry}, {e label}, or {e merge} block;
    - [jump] instructions only target merge blocks;
    - the two successors of an [if] are label blocks with that [if]'s block
      as their single predecessor (hence no critical edges);
    - phi instructions appear only at the head of merge blocks and have one
      argument per predecessor;
    - conditions are normalized to [v1 == v2], [v1 < v2], and
      [v instanceof T] — all other comparisons are expressed by swapping
      operands and/or branch targets (Appendix B.1).

    Unlike the paper's abstract [Any] instruction, we keep the concrete
    arithmetic operator in the IR so that the {e interpreter} substrate can
    execute programs; the analysis treats every [Arith] as an opaque source
    of the lattice value [Any], exactly as in the paper. *)

open Ids

(** Arithmetic operators.  Kept concrete for the interpreter; the analysis
    abstracts all of them to [Any] (paper, Section 3 "Abstractions for
    Primitive Values"). *)
type arith_op = Add | Sub | Mul | Div | Rem

(** Right-hand sides of [v <- e] assignments (the [Expr] rule of Figure 10). *)
type expr =
  | Const of int  (** primitive literal [n]; booleans are 0/1 *)
  | Null  (** the [null] literal *)
  | New of Class.t  (** object allocation [new T] *)
  | NewArr of Class.t * Var.t
      (** array allocation [new T\[n\]]; the class is the array class
          registered by the frontend, the variable is the length *)
  | Arith of arith_op * Var.t * Var.t
      (** arithmetic; analysed as the opaque [Any] source *)
  | AnyInt
      (** opaque integer input (models external/unanalysable values) *)

(** Normalized branching conditions (Appendix B.1): only [==], [<] and
    [instanceof] survive lowering.  Null checks are [Cmp (Eq, v, v_null)]
    where [v_null] is defined by [Assign (v_null, Null)]. *)
type cond =
  | Cmp of [ `Eq | `Lt ] * Var.t * Var.t
  | InstanceOf of Var.t * Class.t

type insn =
  | Assign of Var.t * expr  (** [v <- e] *)
  | Load of { dst : Var.t; recv : Var.t; field : Field.t }  (** [v <- r.x] *)
  | Store of { recv : Var.t; field : Field.t; src : Var.t }  (** [r.x <- v] *)
  | LoadStatic of { dst : Var.t; field : Field.t }  (** [v <- C.x] *)
  | StoreStatic of { field : Field.t; src : Var.t }  (** [C.x <- v] *)
  | ArrLoad of { dst : Var.t; arr : Var.t; idx : Var.t; elem : Field.t }
      (** [v <- a\[i\]]; [elem] is the element pseudo-field of the static
          array type — the analysis treats array reads as loads of that
          field (one element flow per array type), the interpreter indexes
          concretely *)
  | ArrStore of { arr : Var.t; idx : Var.t; src : Var.t; elem : Field.t }
      (** [a\[i\] <- v] *)
  | ArrLen of { dst : Var.t; arr : Var.t }
      (** [v <- a.length]; analysed as an opaque [Any] source *)
  | Cast of { dst : Var.t; src : Var.t; cls : Class.t }
      (** checkcast [v <- (C) src]: a filtering flow that keeps subtypes of
          [C] plus [null] (unlike [instanceof], a cast passes [null]) *)
  | Invoke of {
      dst : Var.t;
      recv : Var.t option;  (** [None] for static calls *)
      target : Meth.t;
          (** statically resolved target; virtual calls re-resolve per
              receiver type during the analysis *)
      args : Var.t list;  (** actual arguments, excluding the receiver *)
      virtual_ : bool;
    }  (** [v <- v0.m(v1, ..., vn)] *)

type terminator =
  | Jump of Block.t  (** [jump m]; the target must be a merge block *)
  | If of { cond : cond; then_ : Block.t; else_ : Block.t }
      (** both targets must be label blocks *)
  | Return of Var.t option  (** [return v]; [None] for void methods *)
  | Throw of Var.t
      (** [throw v]: abrupt termination.  Per Section 5, exception values
          are not tracked interprocedurally; a throw simply never reaches
          the method's return, which is what makes "a method that always
          throws" act as a dead-code predicate at its call sites *)

type block_kind =
  | Entry  (** the unique first block, beginning with [start(p0, ..., pn)] *)
  | Label  (** branch target; exactly one predecessor, ending with [if] *)
  | Merge  (** control-flow merge; the only legal target of [jump] *)

(** A phi instruction [v <- phi(v1, ..., vn)] at the head of a merge block.
    Arguments are keyed by predecessor block so the correspondence between
    incoming edges and operands is explicit. *)
type phi = { phi_var : Var.t; mutable phi_args : (Block.t * Var.t) list }

type block = {
  b_id : Block.t;
  b_kind : block_kind;
  mutable b_phis : phi list;
  mutable b_insns : insn list;
  mutable b_term : terminator option;
  mutable b_preds : Block.t list;
  mutable b_spans : Span.t option list;
      (** source span per instruction, parallel to [b_insns] (maintained by
          {!Ssa_builder.add_insn}; consumers must go through {!insn_spans},
          which tolerates a desynchronized list by padding with [None]) *)
  mutable b_term_span : Span.t option;  (** span of the terminator *)
  mutable b_term_swapped : bool;
      (** for [If] terminators: condition normalization swapped the branch
          targets, so the IR then-successor is the source else-branch *)
  mutable b_term_synthetic : bool;
      (** for [If] terminators: the branch was introduced by lowering a
          literal boolean condition (block statements are wrapped in
          [if (true)], [while (true)] headers); clients reporting dead
          branches skip these *)
}

(** A complete method body. *)
type body = {
  params : Var.t list;
      (** formal parameters as defined by [start(p0, ..., pn)]; for instance
          methods [p0] is the receiver [this] *)
  entry : Block.t;
  blocks : block array;  (** indexed by block id *)
  var_count : int;
  var_tys : Ty.t array;
      (** declared/inferred base-language type per variable, indexed by
          variable id; used for declared-type filtering of parameter flows
          and by the interpreter *)
}

let block body (id : Block.t) = body.blocks.(Block.to_int id)
let var_ty body (v : Var.t) = body.var_tys.(Var.to_int v)

(** [insn_spans blk] is a span list of exactly the same length as
    [blk.b_insns].  Code that rewrites [b_insns] without maintaining
    [b_spans] (some tests do, to build invalid bodies on purpose) only
    loses span information, never correctness: missing entries read as
    [None] and extras are dropped. *)
let insn_spans blk =
  let rec fit insns spans =
    match (insns, spans) with
    | [], _ -> []
    | _ :: is, [] -> None :: fit is []
    | _ :: is, s :: ss -> s :: fit is ss
  in
  fit blk.b_insns blk.b_spans

let successors blk =
  match blk.b_term with
  | None -> []
  | Some (Jump t) -> [ t ]
  | Some (If { then_; else_; _ }) -> [ then_; else_ ]
  | Some (Return _) | Some (Throw _) -> []

(** [reverse_postorder body] lists the blocks of [body] reachable from the
    entry in reverse postorder — the traversal order used when creating a
    PVPG (Appendix B.4). *)
let reverse_postorder body =
  let n = Array.length body.blocks in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs id =
    let i = Block.to_int id in
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter dfs (successors body.blocks.(i));
      order := body.blocks.(i) :: !order
    end
  in
  dfs body.entry;
  !order

(** Instruction count of a body (phis and terminators included); the
    "binary size" proxy sums this over reachable methods. *)
let size body =
  Array.fold_left
    (fun acc b ->
      acc + List.length b.b_phis + List.length b.b_insns
      + (match b.b_term with None -> 0 | Some _ -> 1))
    0 body.blocks

(** Variables defined by an instruction. *)
let insn_defs = function
  | Assign (v, _) -> [ v ]
  | Load { dst; _ } -> [ dst ]
  | Store _ -> []
  | LoadStatic { dst; _ } -> [ dst ]
  | StoreStatic _ -> []
  | ArrLoad { dst; _ } -> [ dst ]
  | ArrStore _ -> []
  | ArrLen { dst; _ } -> [ dst ]
  | Cast { dst; _ } -> [ dst ]
  | Invoke { dst; _ } -> [ dst ]

(** Variables used by an instruction. *)
let insn_uses = function
  | Assign (_, e) -> (
      match e with
      | Const _ | Null | New _ | AnyInt -> []
      | NewArr (_, n) -> [ n ]
      | Arith (_, a, b) -> [ a; b ])
  | Load { recv; _ } -> [ recv ]
  | Store { recv; src; _ } -> [ recv; src ]
  | LoadStatic _ -> []
  | StoreStatic { src; _ } -> [ src ]
  | ArrLoad { arr; idx; _ } -> [ arr; idx ]
  | ArrStore { arr; idx; src; _ } -> [ arr; idx; src ]
  | ArrLen { arr; _ } -> [ arr ]
  | Cast { src; _ } -> [ src ]
  | Invoke { recv; args; _ } -> (
      match recv with None -> args | Some r -> r :: args)

let cond_uses = function
  | Cmp (_, a, b) -> [ a; b ]
  | InstanceOf (v, _) -> [ v ]

let term_uses = function
  | Jump _ -> []
  | If { cond; _ } -> cond_uses cond
  | Return None -> []
  | Return (Some v) -> [ v ]
  | Throw v -> [ v ]
