(** The whole-program model: classes, fields, methods, and the class-
    hierarchy queries the analysis needs — O(1) subtyping via DFS
    intervals, JVM-style virtual-method resolution ([Resolve] of
    Appendix C), and field lookup ([LookUp]).

    A program is built incrementally by a frontend or generator, then
    frozen on first query; declaring new entities invalidates the frozen
    caches.  The distinguished [null] "type" always has class id 0 and
    participates in value states but not in the hierarchy. *)

open Ids

type field = {
  f_id : Field.t;
  f_name : string;
  f_class : Class.t;  (** declaring class *)
  f_ty : Ty.t;
  f_static : bool;
}

type meth = {
  m_id : Meth.t;
  m_name : string;
  m_class : Class.t;  (** declaring class *)
  m_static : bool;
  m_param_tys : Ty.t list;  (** declared parameter types, receiver excluded *)
  m_ret_ty : Ty.t;
  mutable m_body : Bl.body option;
  m_span : Span.t option;  (** source position of the declaration *)
}

type cls = {
  c_id : Class.t;
  c_name : string;
  c_super : Class.t option;
  c_abstract : bool;
  mutable c_fields : field list;  (** declared fields, declaration order *)
  mutable c_methods : meth list;  (** declared methods, declaration order *)
}

type frozen
type t

val create : unit -> t
(** A fresh program containing only the reserved [null] class (id 0). *)

val null_class : Class.t
val null_class_name : string
val is_null_class : Class.t -> bool

exception Duplicate of string

(** {2 Declarations} *)

val declare_class : t -> name:string -> ?super:Class.t -> ?abstract:bool -> unit -> cls
(** @raise Duplicate if the name is taken. *)

val declare_field : t -> cls -> name:string -> ty:Ty.t -> ?static:bool -> unit -> field
val declare_meth :
  t ->
  cls ->
  ?span:Span.t ->
  name:string ->
  static:bool ->
  param_tys:Ty.t list ->
  ret_ty:Ty.t ->
  unit ->
  meth

val set_body : meth -> Bl.body -> unit

(** {2 Array classes} *)

val elem_field_name : string
(** The name of the element pseudo-field every array class declares. *)

val array_class : t -> Ty.t -> cls
(** The class modelling arrays of the given element type (["T[]"]),
    created on first use with covariant placement in the hierarchy and its
    own [$elem] field — one element flow per array type.  Must be called
    before {!freeze} (the frontend registers every mentioned array type). *)

val array_elem_ty : t -> Class.t -> Ty.t option
(** Element type of an array class; [None] for ordinary classes. *)

val is_array_class : t -> Class.t -> bool
val elem_field_of : t -> cls -> field

(** {2 Queries} (freeze the program on first use) *)

val freeze : t -> frozen
val num_classes : t -> int
val num_meths : t -> int
val num_fields : t -> int
val cls : t -> Class.t -> cls
val meth : t -> Meth.t -> meth
val field : t -> Field.t -> field
val find_class : t -> string -> cls option
val find_meth : t -> cls -> string -> meth option
val class_name : t -> Class.t -> string
val meth_name : t -> Meth.t -> string

val qualified_name : t -> Meth.t -> string
(** ["Class.method"], as used in reports and tests. *)

val qualified_field_name : t -> Field.t -> string

val subtype : t -> sub:Class.t -> sup:Class.t -> bool
(** Reflexive subtyping between proper classes.  [null] is handled by
    callers: assignable to any object type, fails [instanceof]. *)

val all_subtypes : t -> Class.t -> Class.t list
(** Including the class itself, DFS order. *)

val concrete_subtypes : t -> Class.t -> Class.t list
(** The instantiable ones only. *)

val resolve : t -> recv_cls:Class.t -> target:Meth.t -> meth option
(** [Resolve(t, m)] of Appendix C: the implementation selected for a
    receiver of dynamic type [recv_cls].  [None] for the null class or
    when no implementation exists. *)

val resolve_by_name : t -> recv_cls:Class.t -> name:string -> meth option
val lookup_field : t -> recv_cls:Class.t -> field:Field.t -> field option
(** [LookUp(t, x)] of Appendix C. *)

val lookup_field_by_name : t -> recv_cls:Class.t -> name:string -> field option
val iter_classes : t -> (cls -> unit) -> unit
val iter_meths : t -> (meth -> unit) -> unit
val iter_fields : t -> (field -> unit) -> unit

val total_size : t -> int
(** Total instruction count over all method bodies. *)

val pp_ty : t -> Format.formatter -> Ty.t -> unit
