(** Recursive-descent parser for MiniJava.

    Operator precedence, loosest to tightest:
    [||] < [&&] < [== !=] < [< <= > >= instanceof] < [+ -] < [* / %]
    < unary [! -] < postfix [.field], [.m(args)].

    Statement-level ambiguity between declarations using class types
    ([C x = ...;]) and expression statements is resolved with one token of
    lookahead after an identifier. *)

exception Error of string * Lexer.pos

type t = {
  toks : (Token.t * Lexer.pos) array;
  mutable i : int;
  mutable recovering : bool;
      (** accumulate diagnostics and resynchronize instead of raising out
          of the statement / member / class loops *)
  mutable diags : Diag.t list;  (** newest first *)
}

let of_string src =
  { toks = Array.of_list (Lexer.tokenize src); i = 0; recovering = false; diags = [] }
let peek p = fst p.toks.(p.i)
let peek2 p = if p.i + 1 < Array.length p.toks then fst p.toks.(p.i + 1) else Token.EOF
let peekn p n = if p.i + n < Array.length p.toks then fst p.toks.(p.i + n) else Token.EOF
let pos p = snd p.toks.(p.i)
let errorf p fmt = Format.kasprintf (fun s -> raise (Error (s, pos p))) fmt

let advance p = if p.i + 1 < Array.length p.toks then p.i <- p.i + 1

let eat p tok =
  if peek p = tok then advance p
  else errorf p "expected '%s' but found '%s'" (Token.to_string tok) (Token.to_string (peek p))

let ident p =
  match peek p with
  | Token.IDENT s ->
      advance p;
      s
  | t -> errorf p "expected identifier but found '%s'" (Token.to_string t)

let rec with_array_suffix p base =
  if peek p = Token.LBRACKET && peek2 p = Token.RBRACKET then begin
    advance p;
    advance p;
    with_array_suffix p (Ast.Tarr base)
  end
  else base

let parse_ty p : Ast.ty =
  let base =
    match peek p with
    | Token.KW_INT ->
        advance p;
        Ast.Tint
    | Token.KW_BOOLEAN ->
        advance p;
        Ast.Tbool
    | Token.KW_VOID ->
        advance p;
        Ast.Tvoid
    | Token.IDENT s ->
        advance p;
        Ast.Tclass s
    | t -> errorf p "expected a type but found '%s'" (Token.to_string t)
  in
  with_array_suffix p base

let is_ty_start = function
  | Token.KW_INT | Token.KW_BOOLEAN | Token.KW_VOID | Token.IDENT _ -> true
  | _ -> false

(* ------------------------------ recovery ------------------------------- *)

let record ?hint p msg epos = p.diags <- Diag.error ?hint ~stage:Diag.Syntax epos "%s" msg :: p.diags

(** Skip to a statement boundary: consume through the next [;] at brace
    depth 0, or stop (without consuming) before a [}] / EOF that closes
    the enclosing block.  Tracking the depth keeps a malformed statement
    containing nested blocks from desynchronizing the whole method. *)
let sync_stmt p =
  let rec go depth =
    match peek p with
    | Token.EOF -> ()
    | Token.SEMI when depth = 0 -> advance p
    | Token.RBRACE when depth = 0 -> ()
    | Token.LBRACE ->
        advance p;
        go (depth + 1)
    | Token.RBRACE ->
        advance p;
        go (depth - 1)
    | _ ->
        advance p;
        go depth
  in
  go 0

(** Skip to a member boundary: past the next [;] or balanced [{...}] body
    at depth 0, stopping before a [}] closing the class or a following
    class declaration (a missing closing brace). *)
let sync_member p =
  let rec go depth =
    match peek p with
    | Token.EOF -> ()
    | (Token.RBRACE | Token.KW_CLASS | Token.KW_ABSTRACT) when depth = 0 -> ()
    | Token.SEMI when depth = 0 -> advance p
    | Token.LBRACE ->
        advance p;
        go (depth + 1)
    | Token.RBRACE ->
        advance p;
        go (depth - 1)
    | _ ->
        advance p;
        go depth
  in
  go 0

(** Skip to the next top-level class declaration. *)
let sync_class p =
  let rec go () =
    match peek p with
    | Token.EOF | Token.KW_CLASS | Token.KW_ABSTRACT -> ()
    | _ ->
        advance p;
        go ()
  in
  go ()

(* ------------------------------ expressions --------------------------- *)

let rec parse_expr p : Ast.expr = parse_or p

and parse_or p =
  let lhs = ref (parse_and p) in
  while peek p = Token.OROR do
    let ps = pos p in
    advance p;
    let rhs = parse_and p in
    lhs := { Ast.e = Ast.Binop (Ast.Or, !lhs, rhs); pos = ps }
  done;
  !lhs

and parse_and p =
  let lhs = ref (parse_eq p) in
  while peek p = Token.ANDAND do
    let ps = pos p in
    advance p;
    let rhs = parse_eq p in
    lhs := { Ast.e = Ast.Binop (Ast.And, !lhs, rhs); pos = ps }
  done;
  !lhs

and parse_eq p =
  let lhs = parse_rel p in
  match peek p with
  | Token.EQ ->
      let ps = pos p in
      advance p;
      let rhs = parse_rel p in
      { Ast.e = Ast.Binop (Ast.Eq, lhs, rhs); pos = ps }
  | Token.NE ->
      let ps = pos p in
      advance p;
      let rhs = parse_rel p in
      { Ast.e = Ast.Binop (Ast.Ne, lhs, rhs); pos = ps }
  | _ -> lhs

and parse_rel p =
  let lhs = parse_add p in
  let bin op =
    let ps = pos p in
    advance p;
    let rhs = parse_add p in
    { Ast.e = Ast.Binop (op, lhs, rhs); pos = ps }
  in
  match peek p with
  | Token.LT -> bin Ast.Lt
  | Token.LE -> bin Ast.Le
  | Token.GT -> bin Ast.Gt
  | Token.GE -> bin Ast.Ge
  | Token.KW_INSTANCEOF ->
      let ps = pos p in
      advance p;
      let cname = ident p in
      { Ast.e = Ast.InstanceOf (lhs, cname); pos = ps }
  | _ -> lhs

and parse_add p =
  let lhs = ref (parse_mul p) in
  let rec go () =
    match peek p with
    | Token.PLUS | Token.MINUS ->
        let op = if peek p = Token.PLUS then Ast.Add else Ast.Sub in
        let ps = pos p in
        advance p;
        let rhs = parse_mul p in
        lhs := { Ast.e = Ast.Binop (op, !lhs, rhs); pos = ps };
        go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_mul p =
  let lhs = ref (parse_unary p) in
  let rec go () =
    match peek p with
    | Token.STAR | Token.SLASH | Token.PERCENT ->
        let op =
          match peek p with
          | Token.STAR -> Ast.Mul
          | Token.SLASH -> Ast.Div
          | _ -> Ast.Rem
        in
        let ps = pos p in
        advance p;
        let rhs = parse_unary p in
        lhs := { Ast.e = Ast.Binop (op, !lhs, rhs); pos = ps };
        go ()
    | _ -> ()
  in
  go ();
  !lhs

(* '(' TYPE ('[' ']')* ')' followed by an expression-start token is a
   cast; anything else starting with '(' is a parenthesized expression *)
and looks_like_cast p =
  peek p = Token.LPAREN
  && (match peek2 p with Token.IDENT _ -> true | _ -> false)
  &&
  let rec after_brackets n =
    if peekn p n = Token.LBRACKET && peekn p (n + 1) = Token.RBRACKET then
      after_brackets (n + 2)
    else n
  in
  let n = after_brackets 2 in
  peekn p n = Token.RPAREN
  &&
  match peekn p (n + 1) with
  | Token.IDENT _ | Token.KW_THIS | Token.KW_NEW | Token.KW_NULL | Token.LPAREN -> true
  | _ -> false

and parse_unary p =
  match peek p with
  | Token.LPAREN when looks_like_cast p ->
      let ps = pos p in
      advance p;
      let ty = parse_ty p in
      eat p Token.RPAREN;
      let e = parse_unary p in
      { Ast.e = Ast.Cast (ty, e); pos = ps }
  | Token.BANG ->
      let ps = pos p in
      advance p;
      { Ast.e = Ast.Not (parse_unary p); pos = ps }
  | Token.MINUS -> (
      let ps = pos p in
      advance p;
      let e = parse_unary p in
      (* fold unary minus on literals so that negative constants stay
         precise in the analysis *)
      match e.Ast.e with
      | Ast.Int n -> { Ast.e = Ast.Int (-n); pos = ps }
      | _ -> { Ast.e = Ast.Neg e; pos = ps })
  | _ -> parse_postfix p

and parse_postfix p =
  let e = ref (parse_primary p) in
  let rec go () =
    if peek p = Token.DOT then begin
      let ps = pos p in
      advance p;
      let name = ident p in
      if peek p = Token.LPAREN then begin
        let args = parse_args p in
        e := { Ast.e = Ast.Call (Some !e, name, args); pos = ps }
      end
      else e := { Ast.e = Ast.FieldGet (!e, name); pos = ps };
      go ()
    end
    else if peek p = Token.LBRACKET && peek2 p <> Token.RBRACKET then begin
      let ps = pos p in
      advance p;
      let idx = parse_expr p in
      eat p Token.RBRACKET;
      e := { Ast.e = Ast.Index (!e, idx); pos = ps };
      go ()
    end
  in
  go ();
  !e

and parse_args p =
  eat p Token.LPAREN;
  if peek p = Token.RPAREN then begin
    advance p;
    []
  end
  else begin
    let rec go acc =
      let e = parse_expr p in
      if peek p = Token.COMMA then begin
        advance p;
        go (e :: acc)
      end
      else begin
        eat p Token.RPAREN;
        List.rev (e :: acc)
      end
    in
    go []
  end

and parse_primary p =
  let ps = pos p in
  match peek p with
  | Token.INT n ->
      advance p;
      { Ast.e = Ast.Int n; pos = ps }
  | Token.KW_TRUE ->
      advance p;
      { Ast.e = Ast.Bool true; pos = ps }
  | Token.KW_FALSE ->
      advance p;
      { Ast.e = Ast.Bool false; pos = ps }
  | Token.KW_NULL ->
      advance p;
      { Ast.e = Ast.Null; pos = ps }
  | Token.KW_THIS ->
      advance p;
      { Ast.e = Ast.This; pos = ps }
  | Token.KW_NEW -> (
      advance p;
      let base =
        match peek p with
        | Token.KW_INT ->
            advance p;
            `Ty Ast.Tint
        | Token.KW_BOOLEAN ->
            advance p;
            `Ty Ast.Tbool
        | Token.IDENT s ->
            advance p;
            `Cls s
        | t -> errorf p "expected a type after 'new' but found '%s'" (Token.to_string t)
      in
      match (base, peek p) with
      | `Cls cname, Token.LPAREN ->
          eat p Token.LPAREN;
          eat p Token.RPAREN;
          { Ast.e = Ast.New cname; pos = ps }
      | _, Token.LBRACKET ->
          advance p;
          let len = parse_expr p in
          eat p Token.RBRACKET;
          (* 'new T[n][]...' allocates an array of arrays *)
          let elem = match base with `Ty t -> t | `Cls c -> Ast.Tclass c in
          let elem = with_array_suffix p elem in
          { Ast.e = Ast.NewArr (elem, len); pos = ps }
      | `Cls _, t | `Ty _, t ->
          errorf p "expected '(' or '[' after 'new' but found '%s'" (Token.to_string t))
  | Token.LPAREN ->
      advance p;
      let e = parse_expr p in
      eat p Token.RPAREN;
      e
  | Token.IDENT name ->
      advance p;
      if peek p = Token.LPAREN then
        let args = parse_args p in
        { Ast.e = Ast.Call (None, name, args); pos = ps }
      else { Ast.e = Ast.Ident name; pos = ps }
  | t -> errorf p "expected an expression but found '%s'" (Token.to_string t)

(* ------------------------------ statements ---------------------------- *)

let rec parse_block p : Ast.stmt list =
  eat p Token.LBRACE;
  let rec go acc =
    if peek p = Token.RBRACE then begin
      advance p;
      List.rev acc
    end
    else if p.recovering && peek p = Token.EOF then begin
      record p "expected '}' before end of input" (pos p);
      List.rev acc
    end
    else
      match parse_stmt p with
      | s -> go (s :: acc)
      | exception Error (msg, epos) when p.recovering ->
          record p msg epos;
          sync_stmt p;
          go acc
  in
  go []

and parse_stmt p : Ast.stmt =
  let ps = pos p in
  match peek p with
  | Token.LBRACE -> { Ast.s = Ast.Block (parse_block p); spos = ps }
  | Token.KW_IF ->
      advance p;
      eat p Token.LPAREN;
      let c = parse_expr p in
      eat p Token.RPAREN;
      let thn = parse_block p in
      let els =
        if peek p = Token.KW_ELSE then begin
          advance p;
          if peek p = Token.KW_IF then [ parse_stmt p ] else parse_block p
        end
        else []
      in
      { Ast.s = Ast.If (c, thn, els); spos = ps }
  | Token.KW_WHILE ->
      advance p;
      eat p Token.LPAREN;
      let c = parse_expr p in
      eat p Token.RPAREN;
      let body = parse_block p in
      { Ast.s = Ast.While (c, body); spos = ps }
  | Token.KW_THROW ->
      advance p;
      let e = parse_expr p in
      eat p Token.SEMI;
      { Ast.s = Ast.Throw e; spos = ps }
  | Token.KW_RETURN ->
      advance p;
      if peek p = Token.SEMI then begin
        advance p;
        { Ast.s = Ast.Return None; spos = ps }
      end
      else begin
        let e = parse_expr p in
        eat p Token.SEMI;
        { Ast.s = Ast.Return (Some e); spos = ps }
      end
  | Token.KW_VAR ->
      (* explicit 'var <type> x [= e];' declaration *)
      advance p;
      parse_decl p ps
  | Token.KW_INT | Token.KW_BOOLEAN -> parse_decl p ps
  | Token.IDENT _ when (match peek2 p with Token.IDENT _ -> true | _ -> false) ->
      (* 'C x ...' is a declaration with a class type *)
      parse_decl p ps
  | Token.IDENT _
    when peek2 p = Token.LBRACKET
         && peekn p 2 = Token.RBRACKET ->
      (* 'C[] x ...' or 'C[][] x ...' is a declaration with an array type *)
      parse_decl p ps
  | _ -> (
      (* assignment or expression statement *)
      let e = parse_expr p in
      match (e.Ast.e, peek p) with
      | Ast.Ident name, Token.ASSIGN ->
          advance p;
          let rhs = parse_expr p in
          eat p Token.SEMI;
          { Ast.s = Ast.AssignLocal (name, rhs); spos = ps }
      | Ast.FieldGet (recv, fname), Token.ASSIGN ->
          advance p;
          let rhs = parse_expr p in
          eat p Token.SEMI;
          { Ast.s = Ast.AssignField (recv, fname, rhs); spos = ps }
      | Ast.Index (arr, idx), Token.ASSIGN ->
          advance p;
          let rhs = parse_expr p in
          eat p Token.SEMI;
          { Ast.s = Ast.AssignIndex (arr, idx, rhs); spos = ps }
      | _, Token.ASSIGN -> errorf p "invalid assignment target"
      | _ ->
          eat p Token.SEMI;
          { Ast.s = Ast.ExprStmt e; spos = ps })

and parse_decl p ps =
  let ty = parse_ty p in
  let name = ident p in
  let init =
    if peek p = Token.ASSIGN then begin
      advance p;
      Some (parse_expr p)
    end
    else None
  in
  eat p Token.SEMI;
  { Ast.s = Ast.LocalDecl (ty, name, init); spos = ps }

(* ------------------------------ declarations -------------------------- *)

let parse_member p : [ `Field of Ast.field_decl | `Meth of Ast.meth_decl ] =
  let ps = pos p in
  if peek p = Token.KW_VAR then begin
    advance p;
    let ty = parse_ty p in
    let name = ident p in
    eat p Token.SEMI;
    `Field { Ast.fd_ty = ty; fd_name = name; fd_static = false; fd_pos = ps }
  end
  else if peek p = Token.KW_STATIC && peek2 p = Token.KW_VAR then begin
    advance p;
    advance p;
    let ty = parse_ty p in
    let name = ident p in
    eat p Token.SEMI;
    `Field { Ast.fd_ty = ty; fd_name = name; fd_static = true; fd_pos = ps }
  end
  else begin
    let static = peek p = Token.KW_STATIC in
    if static then advance p;
    let ty = parse_ty p in
    let name = ident p in
    if peek p = Token.LPAREN then begin
      eat p Token.LPAREN;
      let params =
        if peek p = Token.RPAREN then begin
          advance p;
          []
        end
        else begin
          let rec go acc =
            let pty = parse_ty p in
            let pname = ident p in
            if peek p = Token.COMMA then begin
              advance p;
              go ((pty, pname) :: acc)
            end
            else begin
              eat p Token.RPAREN;
              List.rev ((pty, pname) :: acc)
            end
          in
          go []
        end
      in
      let body = parse_block p in
      `Meth
        {
          Ast.md_name = name;
          md_static = static;
          md_params = params;
          md_ret = ty;
          md_body = body;
          md_pos = ps;
        }
    end
    else begin
      (* field without the 'var' keyword: '<type> name;' *)
      if static then errorf p "static fields use 'static var T x;'";
      eat p Token.SEMI;
      `Field { Ast.fd_ty = ty; fd_name = name; fd_static = false; fd_pos = ps }
    end
  end

let parse_class p : Ast.class_decl =
  let ps = pos p in
  let abstract = peek p = Token.KW_ABSTRACT in
  if abstract then advance p;
  eat p Token.KW_CLASS;
  let name = ident p in
  let super =
    if peek p = Token.KW_EXTENDS then begin
      advance p;
      Some (ident p)
    end
    else None
  in
  eat p Token.LBRACE;
  let fields = ref [] and meths = ref [] in
  let rec go () =
    if peek p = Token.RBRACE then advance p
    else if
      p.recovering
      && match peek p with
         | Token.EOF | Token.KW_CLASS | Token.KW_ABSTRACT -> true
         | _ -> false
    then
      (* unterminated class body: report once and resume at the next
         class declaration (or stop at end of input) *)
      record p
        (Format.asprintf "expected '}' to close class %s but found '%s'" name
           (Token.to_string (peek p)))
        (pos p)
    else
      match parse_member p with
      | `Field f ->
          fields := f :: !fields;
          go ()
      | `Meth m ->
          meths := m :: !meths;
          go ()
      | exception Error (msg, epos) when p.recovering ->
          record p msg epos;
          sync_member p;
          go ()
  in
  go ();
  {
    Ast.cd_name = name;
    cd_super = super;
    cd_abstract = abstract;
    cd_fields = List.rev !fields;
    cd_meths = List.rev !meths;
    cd_pos = ps;
  }

(** Parse a whole program from source text, stopping at the first error. *)
let parse_program src : Ast.program =
  let p = of_string src in
  let rec go acc =
    match peek p with
    | Token.EOF -> List.rev acc
    | Token.KW_CLASS | Token.KW_ABSTRACT -> go (parse_class p :: acc)
    | t -> errorf p "expected a class declaration but found '%s'" (Token.to_string t)
  in
  go []

(** Parse with error recovery: malformed statements resynchronize at the
    next [;] / [}], malformed members at the next member boundary, and
    malformed classes at the next [class] keyword, so a single run reports
    every independent syntax error.  Returns the classes that did parse
    together with the accumulated diagnostics (empty = clean parse; a
    lexical error fails fast with a single diagnostic because the token
    stream ends there). *)
let parse_program_diags src : Ast.program * Diag.t list =
  match of_string src with
  | exception Lexer.Error (msg, epos) ->
      ([], [ Diag.error ~stage:Diag.Lexical epos "%s" msg ])
  | p ->
      p.recovering <- true;
      let rec go acc =
        match peek p with
        | Token.EOF -> List.rev acc
        | Token.KW_CLASS | Token.KW_ABSTRACT -> (
            match parse_class p with
            | c -> go (c :: acc)
            | exception Error (msg, epos) ->
                record p msg epos;
                sync_class p;
                go acc)
        | t ->
            record p
              (Format.asprintf "expected a class declaration but found '%s'"
                 (Token.to_string t))
              (pos p);
            advance p;
            sync_class p;
            go acc
      in
      let classes = go [] in
      (classes, List.rev p.diags)

let _ = is_ty_start (* exported for tests *)
