(** Structured frontend diagnostics: severity, stage, source position,
    message, optional hint; rendered with carets like a batch compiler.
    Accumulated (not fail-fast) by the recovering frontend entry points. *)

type severity = Error | Warning | Note
type stage = Lexical | Syntax | Type | Lint

type t = {
  severity : severity;
  stage : stage;
  pos : Lexer.pos;
  message : string;
  hint : string option;
}

val make :
  ?hint:string ->
  severity:severity ->
  stage:stage ->
  Lexer.pos ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val error :
  ?hint:string -> stage:stage -> Lexer.pos -> ('a, Format.formatter, unit, t) format4 -> 'a
(** [make ~severity:Error]. *)

val warning :
  ?hint:string -> stage:stage -> Lexer.pos -> ('a, Format.formatter, unit, t) format4 -> 'a
(** [make ~severity:Warning]. *)

val note :
  ?hint:string -> stage:stage -> Lexer.pos -> ('a, Format.formatter, unit, t) format4 -> 'a
(** [make ~severity:Note]. *)

val is_error : t -> bool

val pp : Format.formatter -> t -> unit
(** Compact one-line form: [3:14: syntax error: ...]. *)

val source_line : string -> int -> string option
(** The 1-based [n]th line of a source buffer, without its newline. *)

val render : ?file:string -> src:string -> Format.formatter -> t -> unit
(** Full form: [file:line:col] header, offending source line, caret under
    the column, optional hint line. *)

val render_all : ?file:string -> src:string -> Format.formatter -> t list -> unit
(** [render] each diagnostic in source-position order (stable for equal
    positions), then print an error count. *)
