(** Structured frontend diagnostics.

    A {!t} carries a severity, the source position of the offending token,
    which frontend stage produced it ([lexical] / [syntax] / [type]), the
    message, and an optional hint.  The recovering entry points
    ({!Parser.parse_program_diags}, {!Typecheck.check_diags},
    {!Frontend.compile_diags}) accumulate these instead of stopping at the
    first error, so one compiler run reports every independent mistake.

    [render] prints a diagnostic the way a batch compiler does: a
    [file:line:col] header, the offending source line, and a caret under
    the column. *)

type severity = Error | Warning | Note
type stage = Lexical | Syntax | Type | Lint

type t = {
  severity : severity;
  stage : stage;
  pos : Lexer.pos;
  message : string;
  hint : string option;
}

let stage_name = function
  | Lexical -> "lexical"
  | Syntax -> "syntax"
  | Type -> "type"
  | Lint -> "lint"

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let make ?hint ~severity ~stage pos fmt =
  Format.kasprintf (fun message -> { severity; stage; pos; message; hint }) fmt

let error ?hint ~stage pos fmt = make ?hint ~severity:Error ~stage pos fmt
let warning ?hint ~stage pos fmt = make ?hint ~severity:Warning ~stage pos fmt
let note ?hint ~stage pos fmt = make ?hint ~severity:Note ~stage pos fmt
let is_error d = d.severity = Error

(** Compact one-line form: [3:14: syntax error: ...]. *)
let pp ppf d =
  Format.fprintf ppf "%a: %s %s: %s" Lexer.pp_pos d.pos (stage_name d.stage)
    (severity_name d.severity) d.message

(** The 1-based [n]th line of [src] (without its newline), if it exists. *)
let source_line src n =
  let rec find off line =
    if line = n then
      let stop =
        match String.index_from_opt src off '\n' with
        | Some i -> i
        | None -> String.length src
      in
      Some (String.sub src off (stop - off))
    else
      match String.index_from_opt src off '\n' with
      | Some i -> find (i + 1) (line + 1)
      | None -> None
  in
  if n >= 1 then find 0 1 else None

(** [render ~file ~src ppf d] prints the full caret form:
    {v
    foo.mj:3:14: syntax error: expected ';' but found '}'
        x = y + 1
                 ^
        hint: statements end with ';'
    v} *)
let render ?(file = "<input>") ~src ppf d =
  Format.fprintf ppf "%s:%a: %s %s: %s@." file Lexer.pp_pos d.pos
    (stage_name d.stage) (severity_name d.severity) d.message;
  (match source_line src d.pos.Lexer.line with
  | Some line ->
      (* tabs would misalign the caret; render them as single spaces *)
      let line = String.map (function '\t' -> ' ' | c -> c) line in
      Format.fprintf ppf "    %s@." line;
      Format.fprintf ppf "    %s^@." (String.make (max 0 (d.pos.Lexer.col - 1)) ' ')
  | None -> ());
  match d.hint with
  | Some h -> Format.fprintf ppf "    hint: %s@." h
  | None -> ()

(** Source-position order ([line], then [col]); the sort below is stable,
    so diagnostics at the same position keep their accumulation order. *)
let compare_pos a b =
  match Int.compare a.pos.Lexer.line b.pos.Lexer.line with
  | 0 -> Int.compare a.pos.Lexer.col b.pos.Lexer.col
  | c -> c

(** Render a batch of diagnostics in source order, followed by an error
    count. *)
let render_all ?file ~src ppf ds =
  List.iter (render ?file ~src ppf) (List.stable_sort compare_pos ds);
  let errs = List.length (List.filter is_error ds) in
  if errs > 0 then
    Format.fprintf ppf "%d error%s@." errs (if errs = 1 then "" else "s")
