(** Type checker and resolver for MiniJava.

    Two phases:
    + declare every class (in inheritance order), field, and method into a
      fresh {!Skipflow_ir.Program}; check the hierarchy (no cycles, no
      duplicate members, override compatibility);
    + check every method body against the declared signatures, producing
      the typed AST of {!Tast}.

    Scoping is deliberately simple: one flat scope per method (parameters +
    locals), declaration before use, no shadowing.  Non-void methods must
    return on every path ([while (true)] loops count as non-completing,
    which is how "a method never returns" programs — the invoke-as-
    predicate use case of Section 5 — are written). *)

open Skipflow_ir

exception Error of string * Lexer.pos

let errorf pos fmt = Format.kasprintf (fun s -> raise (Error (s, pos))) fmt

type env = {
  prog : Program.t;
  cls : Program.cls;  (** current class *)
  meth : Program.meth;  (** current method *)
  locals : (string, Ty.t) Hashtbl.t;
}

let rec lower_ty prog pos : Ast.ty -> Ty.t = function
  | Ast.Tint -> Ty.Int
  | Ast.Tbool -> Ty.Bool
  | Ast.Tvoid -> Ty.Void
  | Ast.Tclass name -> (
      match Program.find_class prog name with
      | Some c -> Ty.Obj c.Program.c_id
      | None -> errorf pos "unknown class %s" name)
  | Ast.Tarr elem -> (
      (* register the array class (and, covariantly, its super array
         classes) for the element type *)
      match lower_ty prog pos elem with
      | Ty.Void -> errorf pos "array of void"
      | ety -> Ty.Obj (Program.array_class prog ety).Program.c_id)

let ty_name prog t = Ty.to_string ~class_name:(Program.class_name prog) t

(** Assignability: [sub] can be assigned to a location of type [sup]. *)
let assignable prog ~sub ~sup =
  match (sub, sup) with
  | Ty.Int, Ty.Int | Ty.Bool, Ty.Bool -> true
  | Ty.Null, Ty.Obj _ -> true
  | Ty.Obj a, Ty.Obj b -> Program.subtype prog ~sub:a ~sup:b
  | _ -> false

(* ------------------------- phase 1: declarations ----------------------- *)

let declare_classes prog (cds : Ast.class_decl list) =
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (cd : Ast.class_decl) ->
      if Hashtbl.mem by_name cd.Ast.cd_name then
        errorf cd.Ast.cd_pos "class %s declared twice" cd.Ast.cd_name;
      Hashtbl.replace by_name cd.Ast.cd_name cd)
    cds;
  (* topological order along the inheritance relation, with cycle check *)
  let declared = Hashtbl.create 16 in
  let in_progress = Hashtbl.create 16 in
  let rec declare (cd : Ast.class_decl) =
    if not (Hashtbl.mem declared cd.Ast.cd_name) then begin
      if Hashtbl.mem in_progress cd.Ast.cd_name then
        errorf cd.Ast.cd_pos "inheritance cycle through class %s" cd.Ast.cd_name;
      Hashtbl.replace in_progress cd.Ast.cd_name ();
      let super =
        match cd.Ast.cd_super with
        | None -> None
        | Some sname -> (
            match Hashtbl.find_opt by_name sname with
            | Some scd ->
                declare scd;
                Some (Hashtbl.find declared sname : Program.cls).Program.c_id
            | None -> errorf cd.Ast.cd_pos "unknown superclass %s" sname)
      in
      let c =
        Program.declare_class prog ~name:cd.Ast.cd_name ?super
          ~abstract:cd.Ast.cd_abstract ()
      in
      Hashtbl.replace declared cd.Ast.cd_name c;
      Hashtbl.remove in_progress cd.Ast.cd_name
    end
  in
  List.iter declare cds;
  (* members; class types in signatures may refer to any class, so this is
     a separate pass after all classes exist *)
  List.iter
    (fun (cd : Ast.class_decl) ->
      let c = Hashtbl.find declared cd.Ast.cd_name in
      List.iter
        (fun (fd : Ast.field_decl) ->
          let ty = lower_ty prog fd.Ast.fd_pos fd.Ast.fd_ty in
          if Ty.equal ty Ty.Void then errorf fd.Ast.fd_pos "field of type void";
          ignore
            (Program.declare_field prog c ~name:fd.Ast.fd_name ~ty
               ~static:fd.Ast.fd_static ()))
        cd.Ast.cd_fields;
      List.iter
        (fun (md : Ast.meth_decl) ->
          let param_tys =
            List.map (fun (t, _) -> lower_ty prog md.Ast.md_pos t) md.Ast.md_params
          in
          List.iter
            (fun t ->
              if Ty.equal t Ty.Void then errorf md.Ast.md_pos "parameter of type void")
            param_tys;
          let ret_ty = lower_ty prog md.Ast.md_pos md.Ast.md_ret in
          let span =
            Span.make ~line:md.Ast.md_pos.Lexer.line ~col:md.Ast.md_pos.Lexer.col
          in
          ignore
            (Program.declare_meth prog c ~span ~name:md.Ast.md_name
               ~static:md.Ast.md_static ~param_tys ~ret_ty ()))
        cd.Ast.cd_meths)
    cds;
  (* override compatibility *)
  List.iter
    (fun (cd : Ast.class_decl) ->
      let c = Hashtbl.find declared cd.Ast.cd_name in
      match c.Program.c_super with
      | None -> ()
      | Some super ->
          List.iter
            (fun (m : Program.meth) ->
              match Program.resolve_by_name prog ~recv_cls:super ~name:m.Program.m_name with
              | Some inherited ->
                  if m.Program.m_static then
                    errorf cd.Ast.cd_pos
                      "static method %s.%s hides a virtual method" cd.Ast.cd_name
                      m.Program.m_name;
                  if
                    not
                      (List.length inherited.Program.m_param_tys
                       = List.length m.Program.m_param_tys
                      && List.for_all2 Ty.equal inherited.Program.m_param_tys
                           m.Program.m_param_tys
                      && Ty.equal inherited.Program.m_ret_ty m.Program.m_ret_ty)
                  then
                    errorf cd.Ast.cd_pos "override %s.%s changes the signature"
                      cd.Ast.cd_name m.Program.m_name
              | None -> ())
            (List.filter (fun m -> not m.Program.m_static) c.Program.c_methods))
    cds;
  declared

(* --------------------------- phase 2: bodies --------------------------- *)

let rec check_expr env (e : Ast.expr) : Tast.texpr =
  let pos = e.Ast.pos in
  let mk ty node = { Tast.ty; node; pos } in
  match e.Ast.e with
  | Ast.Int n -> mk Ty.Int (Tast.TInt n)
  | Ast.Bool b -> mk Ty.Bool (Tast.TBool b)
  | Ast.Null -> mk Ty.Null Tast.TNull
  | Ast.This ->
      if env.meth.Program.m_static then errorf pos "'this' in a static method";
      mk (Ty.Obj env.cls.Program.c_id) Tast.TThis
  | Ast.Ident name -> (
      match Hashtbl.find_opt env.locals name with
      | Some ty -> mk ty (Tast.TLocal name)
      | None -> errorf pos "unknown variable %s" name)
  | Ast.New cname -> (
      match Program.find_class env.prog cname with
      | Some c ->
          if c.Program.c_abstract then errorf pos "cannot instantiate abstract class %s" cname;
          mk (Ty.Obj c.Program.c_id) (Tast.TNew c.Program.c_id)
      | None -> errorf pos "unknown class %s" cname)
  | Ast.NewArr (elem, len) -> (
      let tlen = check_expr env len in
      if not (Ty.equal tlen.Tast.ty Ty.Int) then errorf pos "array length must be int";
      match lower_ty env.prog pos elem with
      | Ty.Void -> errorf pos "array of void"
      | ety ->
          let acls = Program.array_class env.prog ety in
          mk (Ty.Obj acls.Program.c_id) (Tast.TNewArr (acls.Program.c_id, tlen)))
  | Ast.Index (a, i) -> (
      let ta = check_expr env a in
      let ti = check_expr env i in
      if not (Ty.equal ti.Tast.ty Ty.Int) then errorf pos "array index must be int";
      match ta.Tast.ty with
      | Ty.Obj c when Program.is_array_class env.prog c ->
          let ety = Option.get (Program.array_elem_ty env.prog c) in
          let elem = Program.elem_field_of env.prog (Program.cls env.prog c) in
          mk ety (Tast.TArrGet (ta, ti, elem))
      | t -> errorf pos "indexing a non-array of type %s" (ty_name env.prog t))
  | Ast.Cast (ty, e) -> (
      let te = check_expr env e in
      (match te.Tast.ty with
      | Ty.Obj _ | Ty.Null -> ()
      | t -> errorf pos "cast of non-object type %s" (ty_name env.prog t));
      match lower_ty env.prog pos ty with
      | Ty.Obj c -> mk (Ty.Obj c) (Tast.TCast (c, te))
      | t -> errorf pos "cast to non-class type %s" (ty_name env.prog t))
  | Ast.FieldGet ({ Ast.e = Ast.Ident cname; _ }, fname)
    when (not (Hashtbl.mem env.locals cname))
         && Program.find_class env.prog cname <> None -> (
      (* static field read 'C.x' *)
      let c = Option.get (Program.find_class env.prog cname) in
      match
        List.find_opt
          (fun (f : Program.field) -> String.equal f.Program.f_name fname)
          c.Program.c_fields
      with
      | Some fld when fld.Program.f_static -> mk fld.Program.f_ty (Tast.TStaticGet fld)
      | Some _ -> errorf pos "field %s.%s is not static" cname fname
      | None -> errorf pos "class %s has no static field %s" cname fname)
  | Ast.FieldGet (recv, fname) -> (
      let trecv = check_expr env recv in
      match trecv.Tast.ty with
      | Ty.Obj c when Program.is_array_class env.prog c && String.equal fname "length" ->
          (* arrays expose only 'length' *)
          mk Ty.Int (Tast.TArrLen trecv)
      | Ty.Obj c -> (
          match Program.lookup_field_by_name env.prog ~recv_cls:c ~name:fname with
          | Some fld when not fld.Program.f_static ->
              mk fld.Program.f_ty (Tast.TFieldGet (trecv, fld))
          | Some _ -> errorf pos "static field %s accessed through an instance" fname
          | None ->
              errorf pos "class %s has no field %s" (Program.class_name env.prog c) fname)
      | t -> errorf pos "field access on non-object type %s" (ty_name env.prog t))
  | Ast.Call (recv, mname, args) -> check_call env pos recv mname args
  | Ast.Binop (op, a, b) -> (
      let ta = check_expr env a and tb = check_expr env b in
      let want ty (t : Tast.texpr) =
        if not (Ty.equal t.Tast.ty ty) then
          errorf pos "operand of type %s where %s was expected"
            (ty_name env.prog t.Tast.ty) (ty_name env.prog ty)
      in
      match op with
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Rem ->
          want Ty.Int ta;
          want Ty.Int tb;
          let aop =
            match op with
            | Ast.Add -> Bl.Add
            | Ast.Sub -> Bl.Sub
            | Ast.Mul -> Bl.Mul
            | Ast.Div -> Bl.Div
            | _ -> Bl.Rem
          in
          mk Ty.Int (Tast.TArith (aop, ta, tb))
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
          want Ty.Int ta;
          want Ty.Int tb;
          mk Ty.Bool (Tast.TCmp (op, ta, tb))
      | Ast.Eq | Ast.Ne ->
          let ok =
            match (ta.Tast.ty, tb.Tast.ty) with
            | Ty.Int, Ty.Int | Ty.Bool, Ty.Bool -> true
            | (Ty.Obj _ | Ty.Null), (Ty.Obj _ | Ty.Null) -> true
            | _ -> false
          in
          if not ok then
            errorf pos "cannot compare %s with %s" (ty_name env.prog ta.Tast.ty)
              (ty_name env.prog tb.Tast.ty);
          mk Ty.Bool (Tast.TCmp (op, ta, tb))
      | Ast.And | Ast.Or ->
          want Ty.Bool ta;
          want Ty.Bool tb;
          mk Ty.Bool
            (if op = Ast.And then Tast.TAnd (ta, tb) else Tast.TOr (ta, tb)))
  | Ast.Not e ->
      let te = check_expr env e in
      if not (Ty.equal te.Tast.ty Ty.Bool) then errorf pos "'!' on a non-boolean";
      mk Ty.Bool (Tast.TNot te)
  | Ast.Neg e ->
      let te = check_expr env e in
      if not (Ty.equal te.Tast.ty Ty.Int) then errorf pos "unary '-' on a non-integer";
      mk Ty.Int
        (Tast.TArith (Bl.Sub, { Tast.ty = Ty.Int; node = Tast.TInt 0; pos }, te))
  | Ast.InstanceOf (e, cname) -> (
      let te = check_expr env e in
      (match te.Tast.ty with
      | Ty.Obj _ | Ty.Null -> ()
      | t -> errorf pos "instanceof on non-object type %s" (ty_name env.prog t));
      match Program.find_class env.prog cname with
      | Some c -> mk Ty.Bool (Tast.TInstanceOf (te, c.Program.c_id))
      | None -> errorf pos "unknown class %s" cname)

and check_call env pos recv mname args : Tast.texpr =
  let targs = List.map (check_expr env) args in
  let check_args (m : Program.meth) =
    if List.length m.Program.m_param_tys <> List.length targs then
      errorf pos "method %s expects %d arguments, got %d" m.Program.m_name
        (List.length m.Program.m_param_tys)
        (List.length targs);
    List.iter2
      (fun pty (a : Tast.texpr) ->
        if not (assignable env.prog ~sub:a.Tast.ty ~sup:pty) then
          errorf a.Tast.pos "argument of type %s where %s was expected"
            (ty_name env.prog a.Tast.ty) (ty_name env.prog pty))
      m.Program.m_param_tys targs
  in
  let virtual_call trecv c =
    match Program.resolve_by_name env.prog ~recv_cls:c ~name:mname with
    | Some m when not m.Program.m_static ->
        check_args m;
        { Tast.ty = m.Program.m_ret_ty; node = Tast.TVirtualCall (trecv, m, targs); pos }
    | Some _ -> errorf pos "%s is static; call it as Class.%s(...)" mname mname
    | None ->
        errorf pos "class %s has no method %s" (Program.class_name env.prog c) mname
  in
  match recv with
  | Some { Ast.e = Ast.Ident name; pos = rpos }
    when (not (Hashtbl.mem env.locals name)) && Program.find_class env.prog name <> None
    -> (
      (* static call 'ClassName.m(args)' *)
      let c = Option.get (Program.find_class env.prog name) in
      match Program.find_meth env.prog c mname with
      | Some m when m.Program.m_static ->
          check_args m;
          { Tast.ty = m.Program.m_ret_ty; node = Tast.TStaticCall (m, targs); pos }
      | Some _ -> errorf rpos "method %s.%s is not static" name mname
      | None -> errorf rpos "class %s has no method %s" name mname)
  | Some recv -> (
      let trecv = check_expr env recv in
      match trecv.Tast.ty with
      | Ty.Obj c -> virtual_call trecv c
      | Ty.Null -> errorf pos "method call on null"
      | t -> errorf pos "method call on non-object type %s" (ty_name env.prog t))
  | None ->
      (* bare call: implicit this (instance context) or static in the
         current class (static context) *)
      if env.meth.Program.m_static then begin
        match Program.find_meth env.prog env.cls mname with
        | Some m when m.Program.m_static ->
            check_args m;
            { Tast.ty = m.Program.m_ret_ty; node = Tast.TStaticCall (m, targs); pos }
        | Some _ | None ->
            errorf pos "no static method %s in class %s" mname env.cls.Program.c_name
      end
      else
        let this =
          { Tast.ty = Ty.Obj env.cls.Program.c_id; node = Tast.TThis; pos }
        in
        virtual_call this env.cls.Program.c_id

let rec check_stmt env (s : Ast.stmt) : Tast.tstmt =
  let pos = s.Ast.spos in
  match s.Ast.s with
  | Ast.LocalDecl (ty, name, init) ->
      let ty = lower_ty env.prog pos ty in
      if Ty.equal ty Ty.Void then errorf pos "variable of type void";
      if Hashtbl.mem env.locals name then errorf pos "variable %s declared twice" name;
      let tinit =
        Option.map
          (fun e ->
            let te = check_expr env e in
            if not (assignable env.prog ~sub:te.Tast.ty ~sup:ty) then
              errorf pos "cannot initialize %s with %s" (ty_name env.prog ty)
                (ty_name env.prog te.Tast.ty);
            te)
          init
      in
      Hashtbl.replace env.locals name ty;
      Tast.TSDecl (name, ty, tinit)
  | Ast.AssignLocal (name, e) -> (
      match Hashtbl.find_opt env.locals name with
      | None -> errorf pos "unknown variable %s" name
      | Some ty ->
          let te = check_expr env e in
          if not (assignable env.prog ~sub:te.Tast.ty ~sup:ty) then
            errorf pos "cannot assign %s to %s" (ty_name env.prog te.Tast.ty)
              (ty_name env.prog ty);
          Tast.TSAssignLocal (name, te))
  | Ast.AssignIndex (a, i, e) -> (
      let ta = check_expr env a in
      let ti = check_expr env i in
      if not (Ty.equal ti.Tast.ty Ty.Int) then errorf pos "array index must be int";
      match ta.Tast.ty with
      | Ty.Obj c when Program.is_array_class env.prog c ->
          let ety = Option.get (Program.array_elem_ty env.prog c) in
          let te = check_expr env e in
          if not (assignable env.prog ~sub:te.Tast.ty ~sup:ety) then
            errorf pos "cannot store %s into an array of %s"
              (ty_name env.prog te.Tast.ty) (ty_name env.prog ety);
          let elem = Program.elem_field_of env.prog (Program.cls env.prog c) in
          Tast.TSAssignIndex (ta, ti, te, elem)
      | t -> errorf pos "indexing a non-array of type %s" (ty_name env.prog t))
  | Ast.Throw e ->
      let te = check_expr env e in
      (match te.Tast.ty with
      | Ty.Obj _ -> ()
      | t -> errorf pos "throw of non-object type %s" (ty_name env.prog t));
      Tast.TSThrow te
  | Ast.AssignField ({ Ast.e = Ast.Ident cname; _ }, fname, e)
    when (not (Hashtbl.mem env.locals cname))
         && Program.find_class env.prog cname <> None -> (
      let c = Option.get (Program.find_class env.prog cname) in
      match
        List.find_opt
          (fun (f : Program.field) -> String.equal f.Program.f_name fname)
          c.Program.c_fields
      with
      | Some fld when fld.Program.f_static ->
          let te = check_expr env e in
          if not (assignable env.prog ~sub:te.Tast.ty ~sup:fld.Program.f_ty) then
            errorf pos "cannot assign %s to static field of type %s"
              (ty_name env.prog te.Tast.ty)
              (ty_name env.prog fld.Program.f_ty);
          Tast.TSAssignStatic (fld, te)
      | Some _ -> errorf pos "field %s.%s is not static" cname fname
      | None -> errorf pos "class %s has no static field %s" cname fname)
  | Ast.AssignField (recv, fname, e) -> (
      let trecv = check_expr env recv in
      match trecv.Tast.ty with
      | Ty.Obj c -> (
          match Program.lookup_field_by_name env.prog ~recv_cls:c ~name:fname with
          | Some fld ->
              let te = check_expr env e in
              if not (assignable env.prog ~sub:te.Tast.ty ~sup:fld.Program.f_ty) then
                errorf pos "cannot assign %s to field of type %s"
                  (ty_name env.prog te.Tast.ty)
                  (ty_name env.prog fld.Program.f_ty);
              Tast.TSAssignField (trecv, fld, te)
          | None ->
              errorf pos "class %s has no field %s" (Program.class_name env.prog c) fname)
      | t -> errorf pos "field store on non-object type %s" (ty_name env.prog t))
  | Ast.ExprStmt e -> Tast.TSExpr (check_expr env e)
  | Ast.If (c, thn, els) ->
      let tc = check_expr env c in
      if not (Ty.equal tc.Tast.ty Ty.Bool) then errorf pos "if condition must be boolean";
      Tast.TSIf (tc, check_scoped env thn, check_scoped env els)
  | Ast.While (c, body) ->
      let tc = check_expr env c in
      if not (Ty.equal tc.Tast.ty Ty.Bool) then errorf pos "while condition must be boolean";
      Tast.TSWhile (tc, check_scoped env body)
  | Ast.Return None ->
      if not (Ty.equal env.meth.Program.m_ret_ty Ty.Void) then
        errorf pos "missing return value";
      Tast.TSReturn None
  | Ast.Return (Some e) ->
      if Ty.equal env.meth.Program.m_ret_ty Ty.Void then
        errorf pos "void method cannot return a value";
      let te = check_expr env e in
      if not (assignable env.prog ~sub:te.Tast.ty ~sup:env.meth.Program.m_ret_ty) then
        errorf pos "return type mismatch: %s where %s was expected"
          (ty_name env.prog te.Tast.ty)
          (ty_name env.prog env.meth.Program.m_ret_ty);
      Tast.TSReturn (Some te)
  | Ast.Block body ->
      Tast.TSIf
        ( { Tast.ty = Ty.Bool; node = Tast.TBool true; pos },
          check_scoped env body,
          [] )

(** Check a nested statement list with lexical scoping: declarations inside
    the block do not leak out.  This matters for the SSA lowering — a
    variable declared in only one branch has no definition on the other
    path, so allowing it to escape would produce reads of undefined SSA
    values. *)
and check_scoped env stmts =
  let env' = { env with locals = Hashtbl.copy env.locals } in
  List.map (check_stmt env') stmts

(** Does the statement list complete normally (JLS-style definite-return
    check, simplified)?  [while (true)] never completes. *)
let rec completes (stmts : Tast.tstmt list) =
  match stmts with
  | [] -> true
  | s :: rest -> (
      match s with
      | Tast.TSReturn _ | Tast.TSThrow _ -> false
      | Tast.TSIf ({ node = Tast.TBool true; _ }, thn, _) ->
          if completes thn then completes rest else false
      | Tast.TSIf (_, thn, els) ->
          if completes thn || completes els then completes rest else false
      | Tast.TSWhile ({ node = Tast.TBool true; _ }, _) -> false
      | _ -> completes rest)

let check_meth prog (cls : Program.cls) (m : Program.meth) (md : Ast.meth_decl) :
    Tast.tmeth =
  let locals = Hashtbl.create 16 in
  let params =
    List.map2
      (fun (_, name) ty ->
        if Hashtbl.mem locals name then
          errorf md.Ast.md_pos "parameter %s declared twice" name;
        Hashtbl.replace locals name ty;
        (name, ty))
      md.Ast.md_params m.Program.m_param_tys
  in
  let env = { prog; cls; meth = m; locals } in
  let body = List.map (check_stmt env) md.Ast.md_body in
  if (not (Ty.equal m.Program.m_ret_ty Ty.Void)) && completes body then
    errorf md.Ast.md_pos "method %s.%s does not return on all paths"
      cls.Program.c_name m.Program.m_name;
  { Tast.tm_meth = m; tm_params = params; tm_body = body }

(** Type-check with error recovery at method boundaries.  Phase 1
    (declarations) still fails fast — a broken hierarchy makes every
    downstream message unreliable — but phase 2 checks every method body
    even after some have failed, accumulating one diagnostic per broken
    method.  Returns [Ok] only when no diagnostics were produced. *)
let check_diags (cds : Ast.program) : (Tast.tprogram, Diag.t list) result =
  let prog = Program.create () in
  match declare_classes prog cds with
  | exception Error (msg, epos) ->
      Stdlib.Error [ Diag.error ~stage:Diag.Type epos "%s" msg ]
  | declared ->
      let diags = ref [] in
      let tmeths =
        List.concat_map
          (fun (cd : Ast.class_decl) ->
            let cls = Hashtbl.find declared cd.Ast.cd_name in
            List.filter_map
              (fun (md : Ast.meth_decl) ->
                let m = Option.get (Program.find_meth prog cls md.Ast.md_name) in
                match check_meth prog cls m md with
                | tm -> Some tm
                | exception Error (msg, epos) ->
                    diags := Diag.error ~stage:Diag.Type epos "%s" msg :: !diags;
                    None)
              cd.Ast.cd_meths)
          cds
      in
      if !diags = [] then Ok { Tast.tp_prog = prog; tp_meths = tmeths }
      else Stdlib.Error (List.rev !diags)

(** Type-check a parsed program, producing the program model and the typed
    bodies ready for lowering. *)
let check (cds : Ast.program) : Tast.tprogram =
  let prog = Program.create () in
  let declared = declare_classes prog cds in
  let tmeths =
    List.concat_map
      (fun (cd : Ast.class_decl) ->
        let cls = Hashtbl.find declared cd.Ast.cd_name in
        List.map
          (fun (md : Ast.meth_decl) ->
            let m = Option.get (Program.find_meth prog cls md.Ast.md_name) in
            check_meth prog cls m md)
          cd.Ast.cd_meths)
      cds
  in
  { Tast.tp_prog = prog; tp_meths = tmeths }
