(** Frontend driver: MiniJava source text to an analyzable program
    (lex/parse → type check → lower to validated SSA). *)

exception Error of string
(** Any lexical, syntax, or type error, with a source position in the
    message. *)

val compile : string -> Skipflow_ir.Program.t
(** Compile source text.  @raise Error on any frontend error. *)

val compile_ast : Ast.program -> Skipflow_ir.Program.t
(** Type-check and lower an already-parsed program (used by the workload
    generators). *)

val compile_file : string -> Skipflow_ir.Program.t
(** Read and compile a [.mj] file. *)

val read_file : string -> string
(** Read a file's entire contents.  @raise Sys_error on I/O failure. *)

type spanner = { span : 'a. string -> (unit -> 'a) -> 'a }
(** Phase hook: a polymorphic span wrapper the recovering pipeline calls
    around each phase ([parse], [typecheck], [lower]).  Callers that time
    compilation pass one built from their observability layer; the
    frontend itself stays free of that dependency. *)

val null_spanner : spanner
(** The identity spanner (no timing). *)

val compile_diags :
  ?spanner:spanner -> string -> (Skipflow_ir.Program.t, Diag.t list) result
(** Compile with error recovery: accumulate every independent syntax /
    type error instead of stopping at the first.  [Ok] results are fully
    lowered and validated, exactly like {!compile}. *)

val compile_file_diags :
  ?spanner:spanner ->
  string ->
  string * (Skipflow_ir.Program.t, Diag.t list) result
(** {!compile_diags} over a file's contents; also returns the source text
    so callers can render caret diagnostics. *)

val main_of : Skipflow_ir.Program.t -> Skipflow_ir.Program.meth option
(** The conventional entry point: a static method named [main], preferring
    one declared in a class named [Main]. *)
