(** Frontend driver: MiniJava source text to an analyzable program
    (lex/parse → type check → lower to validated SSA). *)

exception Error of string
(** Any lexical, syntax, or type error, with a source position in the
    message. *)

val compile : string -> Skipflow_ir.Program.t
(** Compile source text.  @raise Error on any frontend error. *)

val compile_ast : Ast.program -> Skipflow_ir.Program.t
(** Type-check and lower an already-parsed program (used by the workload
    generators). *)

val compile_file : string -> Skipflow_ir.Program.t
(** Read and compile a [.mj] file. *)

val compile_diags : string -> (Skipflow_ir.Program.t, Diag.t list) result
(** Compile with error recovery: accumulate every independent syntax /
    type error instead of stopping at the first.  [Ok] results are fully
    lowered and validated, exactly like {!compile}. *)

val compile_file_diags : string -> string * (Skipflow_ir.Program.t, Diag.t list) result
(** {!compile_diags} over a file's contents; also returns the source text
    so callers can render caret diagnostics. *)

val main_of : Skipflow_ir.Program.t -> Skipflow_ir.Program.meth option
(** The conventional entry point: a static method named [main], preferring
    one declared in a class named [Main]. *)
