(** Frontend driver: MiniJava source text to an analyzable program.

    [compile] runs the full pipeline: lex/parse → type check → lower to the
    SSA base language (validating every body).  Errors are reported with
    source positions via the {!Error} exception. *)

open Skipflow_ir

exception Error of string

let () =
  Printexc.register_printer (function
    | Error msg -> Some ("Frontend.Error: " ^ msg)
    | _ -> None)

(** Phase hook: callers that time compilation (the CLI, the library
    facade) pass a polymorphic span wrapper; the frontend stays free of
    any dependency on the core observability types. *)
type spanner = { span : 'a. string -> (unit -> 'a) -> 'a }

let null_spanner = { span = (fun _ f -> f ()) }

let wrap_errors f =
  try f () with
  | Lexer.Error (msg, pos) ->
      raise (Error (Format.asprintf "%a: lexical error: %s" Lexer.pp_pos pos msg))
  | Parser.Error (msg, pos) ->
      raise (Error (Format.asprintf "%a: syntax error: %s" Lexer.pp_pos pos msg))
  | Typecheck.Error (msg, pos) ->
      raise (Error (Format.asprintf "%a: type error: %s" Lexer.pp_pos pos msg))

(** [compile src] compiles MiniJava source text to a program with lowered,
    validated SSA bodies for every method.
    @raise Error on any lexical, syntax, or type error. *)
let compile (src : string) : Program.t =
  wrap_errors (fun () ->
      let ast = Parser.parse_program src in
      let tp = Typecheck.check ast in
      Lower.lower_program tp)

(** [compile_ast ast] type-checks and lowers an already-parsed program
    (used by the workload generators, which construct ASTs directly). *)
let compile_ast (ast : Ast.program) : Program.t =
  wrap_errors (fun () -> Lower.lower_program (Typecheck.check ast))

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  src

(** [compile_file path] reads and compiles a [.mj] file. *)
let compile_file (path : string) : Program.t = compile (read_file path)

(** [compile_diags src] compiles with error recovery, accumulating every
    independent syntax / type error instead of stopping at the first.
    Parse diagnostics are reported alone (type-checking a partial AST
    would cascade spurious errors); a clean parse proceeds to the
    recovering type checker.  [Ok] results are fully lowered and
    validated, exactly like {!compile}. *)
let compile_diags ?(spanner = null_spanner) (src : string) :
    (Program.t, Diag.t list) result =
  match spanner.span "parse" (fun () -> Parser.parse_program_diags src) with
  | _, (_ :: _ as ds) -> Stdlib.Error ds
  | ast, [] -> (
      match spanner.span "typecheck" (fun () -> Typecheck.check_diags ast) with
      | Stdlib.Error ds -> Stdlib.Error ds
      | Ok tp -> Ok (spanner.span "lower" (fun () -> Lower.lower_program tp)))

(** [compile_file_diags path] is {!compile_diags} over a file's contents;
    also returns the source text so callers can render carets. *)
let compile_file_diags ?spanner (path : string) :
    string * (Program.t, Diag.t list) result =
  let src = read_file path in
  (src, compile_diags ?spanner src)

(** [main_of prog] finds the conventional entry point: a static method
    named [main], preferring one declared in a class named [Main]. *)
let main_of (prog : Program.t) : Program.meth option =
  let found = ref None in
  let preferred = ref None in
  Program.iter_meths prog (fun m ->
      if m.Program.m_static && String.equal m.Program.m_name "main" then begin
        if !found = None then found := Some m;
        if String.equal (Program.class_name prog m.Program.m_class) "Main" then
          preferred := Some m
      end);
  match !preferred with Some m -> Some m | None -> !found
