(** Lowering from the typed AST to the SSA base language of Appendix B.

    The interesting work is condition normalization and boolean lowering:

    - only [==], [<] and [instanceof] survive as branch conditions; [!=],
      [<=], [>], [>=] and [!] are expressed by swapping operands and/or
      branch targets (Appendix B.1);
    - [&&] / [||] short-circuit through intermediate merge blocks;
    - a boolean-typed value used as a condition becomes a comparison with
      the constant 0 (paper, Figure 7: [if (thread.isVirtual())] is encoded
      as [isVirtual() != 0]);
    - a boolean-producing expression used as a {e value} is materialized as
      the constants 1/0 through control flow (which is exactly the shape of
      the [isVirtual] PVPG on the right of Figure 7);
    - arithmetic keeps its operator in the IR (for the interpreter) but is
      abstracted to [Any] by the analysis.

    Every branch target of an [if] is a fresh label block that immediately
    jumps to a merge-block "landing pad"; statements are lowered into the
    pads.  This uniform shape satisfies the no-critical-edge constraint and
    preserves the filter-flow shadows of the branch condition (the label
    block's re-definitions propagate into its single-successor pad).

    Methods funnel all returns through a single merge block, giving the
    base language's single-[return] form. *)

open Skipflow_ir

type ctx = {
  b : Ssa_builder.t;
  prog : Program.t;
  meth : Program.meth;
  ret_block : Bl.block;
  mutable tmp : int;
}

let fresh_tmp ctx prefix =
  let n = ctx.tmp in
  ctx.tmp <- n + 1;
  Printf.sprintf "$%s%d" prefix n

let span_of (e : Tast.texpr) =
  Some (Span.make ~line:e.Tast.pos.Lexer.line ~col:e.Tast.pos.Lexer.col)

(* Spans are recorded by the builder at emission time, so each case below
   re-sets the current span to its own expression right before emitting
   (lowering a sub-expression moves it). *)
let set_sp ctx (e : Tast.texpr) = Ssa_builder.set_span ctx.b (span_of e)

let default_value ctx blk (ty : Ty.t) =
  match ty with
  | Ty.Int | Ty.Bool -> Ssa_builder.const ctx.b blk 0
  | Ty.Obj _ | Ty.Null -> Ssa_builder.null ctx.b blk
  | Ty.Void -> Ssa_builder.const ctx.b blk 0

(* Normalized comparison: base-language condition plus a "swap branch
   targets" flag. *)
let normalize_cmp (op : Ast.binop) va vb : Bl.cond * bool =
  match op with
  | Ast.Eq -> (Bl.Cmp (`Eq, va, vb), false)
  | Ast.Ne -> (Bl.Cmp (`Eq, va, vb), true)
  | Ast.Lt -> (Bl.Cmp (`Lt, va, vb), false)
  | Ast.Ge -> (Bl.Cmp (`Lt, va, vb), true)
  | Ast.Gt -> (Bl.Cmp (`Lt, vb, va), false)
  | Ast.Le -> (Bl.Cmp (`Lt, vb, va), true)
  | _ -> invalid_arg "normalize_cmp"

let rec lower_expr ctx (cur : Bl.block) (e : Tast.texpr) : Bl.block * Ids.Var.t =
  set_sp ctx e;
  match e.Tast.node with
  | Tast.TInt n -> (cur, Ssa_builder.const ctx.b cur n)
  | Tast.TBool bv -> (cur, Ssa_builder.const ctx.b cur (if bv then 1 else 0))
  | Tast.TNull -> (cur, Ssa_builder.null ctx.b cur)
  | Tast.TThis -> (cur, Ssa_builder.read_var ctx.b cur "this" ~ty:e.Tast.ty)
  | Tast.TLocal x -> (cur, Ssa_builder.read_var ctx.b cur x ~ty:e.Tast.ty)
  | Tast.TNew c -> (cur, Ssa_builder.new_ ctx.b cur c)
  | Tast.TFieldGet (recv, fld) ->
      let cur, r = lower_expr ctx cur recv in
      set_sp ctx e;
      (cur, Ssa_builder.load ctx.b cur ~ty:fld.Program.f_ty ~recv:r ~field:fld.Program.f_id)
  | Tast.TStaticGet fld ->
      (cur, Ssa_builder.load_static ctx.b cur ~ty:fld.Program.f_ty ~field:fld.Program.f_id)
  | Tast.TNewArr (acls, len) ->
      let cur, vlen = lower_expr ctx cur len in
      set_sp ctx e;
      (cur, Ssa_builder.new_arr ctx.b cur acls vlen)
  | Tast.TArrGet (a, i, elem) ->
      let cur, va = lower_expr ctx cur a in
      let cur, vi = lower_expr ctx cur i in
      set_sp ctx e;
      ( cur,
        Ssa_builder.arr_load ctx.b cur ~ty:elem.Program.f_ty ~arr:va ~idx:vi
          ~elem:elem.Program.f_id )
  | Tast.TArrLen a ->
      let cur, va = lower_expr ctx cur a in
      set_sp ctx e;
      (cur, Ssa_builder.arr_len ctx.b cur ~arr:va)
  | Tast.TCast (cls, inner) ->
      let cur, v = lower_expr ctx cur inner in
      set_sp ctx e;
      (cur, Ssa_builder.cast ctx.b cur ~cls ~src:v)
  | Tast.TArith (op, a, bb) ->
      let cur, va = lower_expr ctx cur a in
      let cur, vb = lower_expr ctx cur bb in
      set_sp ctx e;
      (cur, Ssa_builder.arith ctx.b cur op va vb)
  | Tast.TVirtualCall (recv, m, args) ->
      let cur, r = lower_expr ctx cur recv in
      let cur, vargs =
        List.fold_left
          (fun (cur, acc) a ->
            let cur, v = lower_expr ctx cur a in
            (cur, v :: acc))
          (cur, []) args
      in
      set_sp ctx e;
      ( cur,
        Ssa_builder.invoke ctx.b cur ~ty:m.Program.m_ret_ty ~recv:(Some r)
          ~target:m.Program.m_id ~args:(List.rev vargs) ~virtual_:true )
  | Tast.TStaticCall (m, args) ->
      let cur, vargs =
        List.fold_left
          (fun (cur, acc) a ->
            let cur, v = lower_expr ctx cur a in
            (cur, v :: acc))
          (cur, []) args
      in
      set_sp ctx e;
      ( cur,
        Ssa_builder.invoke ctx.b cur ~ty:m.Program.m_ret_ty ~recv:None
          ~target:m.Program.m_id ~args:(List.rev vargs) ~virtual_:false )
  | Tast.TCmp _ | Tast.TInstanceOf _ | Tast.TNot _ | Tast.TAnd _ | Tast.TOr _ ->
      (* boolean in value position: materialize 1/0 through control flow *)
      let then_pad = Ssa_builder.merge_block ctx.b in
      let else_pad = Ssa_builder.merge_block ctx.b in
      lower_cond ctx cur e then_pad else_pad;
      Ssa_builder.seal ctx.b then_pad;
      Ssa_builder.seal ctx.b else_pad;
      let tmp = fresh_tmp ctx "b" in
      let join = Ssa_builder.merge_block ctx.b in
      let v1 = Ssa_builder.const ctx.b then_pad 1 in
      Ssa_builder.write_var ctx.b then_pad tmp v1;
      Ssa_builder.terminate ctx.b then_pad (Bl.Jump join.Bl.b_id);
      let v0 = Ssa_builder.const ctx.b else_pad 0 in
      Ssa_builder.write_var ctx.b else_pad tmp v0;
      Ssa_builder.terminate ctx.b else_pad (Bl.Jump join.Bl.b_id);
      Ssa_builder.seal ctx.b join;
      (join, Ssa_builder.read_var ctx.b join tmp ~ty:Ty.Bool)

(** [lower_cond ctx cur e then_pad else_pad] lowers the boolean expression
    [e] as a branch: [cur] is terminated and every path ends with a jump to
    [then_pad] (condition true) or [else_pad] (condition false).  Both pads
    must be unsealed merge blocks; the caller seals them afterwards. *)
and lower_cond ctx (cur : Bl.block) (e : Tast.texpr) (then_pad : Bl.block)
    (else_pad : Bl.block) : unit =
  match e.Tast.node with
  | Tast.TNot inner -> lower_cond ctx cur inner else_pad then_pad
  | Tast.TAnd (a, bb) ->
      let mid = Ssa_builder.merge_block ctx.b in
      lower_cond ctx cur a mid else_pad;
      Ssa_builder.seal ctx.b mid;
      lower_cond ctx mid bb then_pad else_pad
  | Tast.TOr (a, bb) ->
      let mid = Ssa_builder.merge_block ctx.b in
      lower_cond ctx cur a then_pad mid;
      Ssa_builder.seal ctx.b mid;
      lower_cond ctx mid bb then_pad else_pad
  | Tast.TCmp (op, a, bb) ->
      let cur, va = lower_expr ctx cur a in
      let cur, vb = lower_expr ctx cur bb in
      let cond, swap = normalize_cmp op va vb in
      set_sp ctx e;
      branch ctx cur cond ~swap ~synthetic:false then_pad else_pad
  | Tast.TInstanceOf (inner, c) ->
      let cur, v = lower_expr ctx cur inner in
      set_sp ctx e;
      branch ctx cur (Bl.InstanceOf (v, c)) ~swap:false ~synthetic:false
        then_pad else_pad
  | _ ->
      (* a boolean-typed value: encode as '!= 0' (Figure 7).  A literal
         boolean here is a lowering artifact — {!Typecheck} wraps block
         statements as [if (true)] — so the branch is marked synthetic and
         dead-branch clients ignore it. *)
      let synthetic =
        match e.Tast.node with Tast.TBool _ -> true | _ -> false
      in
      let cur, v = lower_expr ctx cur e in
      let zero = Ssa_builder.const ctx.b cur 0 in
      set_sp ctx e;
      branch ctx cur (Bl.Cmp (`Eq, v, zero)) ~swap:true ~synthetic then_pad
        else_pad

and branch ctx cur cond ~swap ~synthetic then_pad else_pad =
  let lt = Ssa_builder.label_block ctx.b in
  let le = Ssa_builder.label_block ctx.b in
  Ssa_builder.terminate ctx.b cur
    (Bl.If { cond; then_ = lt.Bl.b_id; else_ = le.Bl.b_id });
  Ssa_builder.mark_branch ctx.b cur ~swapped:swap ~synthetic;
  let t_target, e_target = if swap then (else_pad, then_pad) else (then_pad, else_pad) in
  Ssa_builder.terminate ctx.b lt (Bl.Jump t_target.Bl.b_id);
  Ssa_builder.terminate ctx.b le (Bl.Jump e_target.Bl.b_id)

(* ------------------------------ statements ---------------------------- *)

(** Returns [None] when control cannot fall through (all paths returned). *)
let rec lower_stmt ctx (cur : Bl.block) (s : Tast.tstmt) : Bl.block option =
  match s with
      | Tast.TSDecl (x, ty, init) ->
          let cur, v =
            match init with
            | Some e -> lower_expr ctx cur e
            | None -> (cur, default_value ctx cur ty)
          in
          Ssa_builder.write_var ctx.b cur x v;
          Some cur
      | Tast.TSAssignLocal (x, e) ->
          let cur, v = lower_expr ctx cur e in
          Ssa_builder.write_var ctx.b cur x v;
          Some cur
      | Tast.TSAssignField (recv, fld, e) ->
          let cur, r = lower_expr ctx cur recv in
          let cur, v = lower_expr ctx cur e in
          set_sp ctx recv;
          Ssa_builder.store ctx.b cur ~recv:r ~field:fld.Program.f_id ~src:v;
          Some cur
      | Tast.TSAssignIndex (a, i, e, elem) ->
          let cur, va = lower_expr ctx cur a in
          let cur, vi = lower_expr ctx cur i in
          let cur, v = lower_expr ctx cur e in
          set_sp ctx a;
          Ssa_builder.arr_store ctx.b cur ~arr:va ~idx:vi ~src:v ~elem:elem.Program.f_id;
          Some cur
      | Tast.TSAssignStatic (fld, e) ->
          let cur, v = lower_expr ctx cur e in
          Ssa_builder.store_static ctx.b cur ~field:fld.Program.f_id ~src:v;
          Some cur
      | Tast.TSThrow e ->
          let cur, v = lower_expr ctx cur e in
          Ssa_builder.terminate ctx.b cur (Bl.Throw v);
          None
      | Tast.TSExpr e ->
          let cur, _ = lower_expr ctx cur e in
          Some cur
      | Tast.TSReturn e ->
          (match e with
          | Some e ->
              let cur, v = lower_expr ctx cur e in
              Ssa_builder.write_var ctx.b cur "$ret" v;
              Ssa_builder.terminate ctx.b cur (Bl.Jump ctx.ret_block.Bl.b_id)
          | None -> Ssa_builder.terminate ctx.b cur (Bl.Jump ctx.ret_block.Bl.b_id));
          None
      | Tast.TSIf (c, thn, els) ->
          let then_pad = Ssa_builder.merge_block ctx.b in
          let else_pad = Ssa_builder.merge_block ctx.b in
          lower_cond ctx cur c then_pad else_pad;
          Ssa_builder.seal ctx.b then_pad;
          Ssa_builder.seal ctx.b else_pad;
          let end_thn = lower_stmts ctx (Some then_pad) thn in
          let end_els = lower_stmts ctx (Some else_pad) els in
          (match (end_thn, end_els) with
          | None, None -> None
          | _ ->
              let join = Ssa_builder.merge_block ctx.b in
              let jump = function
                | Some blk -> Ssa_builder.terminate ctx.b blk (Bl.Jump join.Bl.b_id)
                | None -> ()
              in
              jump end_thn;
              jump end_els;
              Ssa_builder.seal ctx.b join;
              Some join)
      | Tast.TSWhile (c, body) ->
          let header = Ssa_builder.merge_block ctx.b in
          Ssa_builder.terminate ctx.b cur (Bl.Jump header.Bl.b_id);
          let body_pad = Ssa_builder.merge_block ctx.b in
          let exit_pad = Ssa_builder.merge_block ctx.b in
          lower_cond ctx header c body_pad exit_pad;
          Ssa_builder.seal ctx.b body_pad;
          Ssa_builder.seal ctx.b exit_pad;
          let end_body = lower_stmts ctx (Some body_pad) body in
          (match end_body with
          | Some blk -> Ssa_builder.terminate ctx.b blk (Bl.Jump header.Bl.b_id)
          | None -> ());
          Ssa_builder.seal ctx.b header;
          Some exit_pad

and lower_stmts ctx cur stmts =
  List.fold_left
    (fun cur s ->
      match cur with
      (* statements after a return are dead code: Java rejects them, we
         drop them (they cannot affect the analysis) *)
      | None -> None
      | Some cur -> lower_stmt ctx cur s)
    cur stmts

(* ------------------------------- methods ------------------------------ *)

let lower_meth (prog : Program.t) (tm : Tast.tmeth) : Bl.body =
  let m = tm.Tast.tm_meth in
  let cls_ty = Ty.Obj m.Program.m_class in
  let params =
    (if m.Program.m_static then [] else [ ("this", cls_ty) ])
    @ List.map (fun (name, ty) -> (name, ty)) tm.Tast.tm_params
  in
  let b = Ssa_builder.create ~params in
  let ret_block = Ssa_builder.merge_block b in
  let ctx = { b; prog; meth = m; ret_block; tmp = 0 } in
  let entry = Ssa_builder.entry_block b in
  (* Pre-initialize the return slot so that methods whose completion the
     simple typechecker analysis cannot rule out still produce valid SSA
     (the default value only flows if the fall-through edge is live). *)
  (if not (Ty.equal m.Program.m_ret_ty Ty.Void) then
     let v = default_value ctx entry m.Program.m_ret_ty in
     Ssa_builder.write_var b entry "$ret" v);
  let end_ = lower_stmts ctx (Some entry) tm.Tast.tm_body in
  (match end_ with
  | Some blk -> Ssa_builder.terminate b blk (Bl.Jump ret_block.Bl.b_id)
  | None -> ());
  Ssa_builder.seal b ret_block;
  (if ret_block.Bl.b_preds = [] then
     (* the method provably never returns (e.g. 'while (true)'):
        the return block is unreachable *)
     Ssa_builder.terminate b ret_block (Bl.Return None)
   else if Ty.equal m.Program.m_ret_ty Ty.Void then
     Ssa_builder.terminate b ret_block (Bl.Return None)
   else
     let v = Ssa_builder.read_var b ret_block "$ret" ~ty:m.Program.m_ret_ty in
     Ssa_builder.terminate b ret_block (Bl.Return (Some v)));
  Ssa_builder.finish b

(** Lower every method of a type-checked program and attach the bodies;
    each body is validated against the Appendix B structural invariants. *)
let lower_program (tp : Tast.tprogram) : Program.t =
  List.iter
    (fun tm ->
      let body = lower_meth tp.Tast.tp_prog tm in
      Validate.run body;
      Program.set_body tm.Tast.tm_meth body)
    tp.Tast.tp_meths;
  tp.Tast.tp_prog
