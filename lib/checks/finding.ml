(** A lint finding: one fact a check proved from the solved PVPG, with
    enough structure to render as a caret diagnostic ({!to_diag}), as a
    stable plain-text line, or as JSON ({!to_json} / {!of_json} round-trip
    exactly — the golden CI test relies on it). *)

open Skipflow_ir

type severity = Error | Warning | Note

type t = {
  check : string;  (** registry id of the producing check, e.g. ["dead-branch"] *)
  severity : severity;
  span : Span.t option;
      (** position in the analyzed source; [None] for findings about
          constructs with no recorded span *)
  meth : string;  (** qualified name of the enclosing (or subject) method *)
  message : string;
  hint : string option;
}

let make ?hint ?span ~check ~severity ~meth message =
  { check; severity; span; meth; message; hint }

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let severity_of_name = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "note" -> Some Note
  | _ -> None

(** Severity rank for [--fail-on] threshold comparisons (higher = worse). *)
let severity_rank = function Note -> 0 | Warning -> 1 | Error -> 2

(** Source-position order: spanned findings first (by position), then by
    check id, method and message so that the full order is deterministic. *)
let compare a b =
  let span_key = function Some s -> (0, s) | None -> (1, Span.make ~line:0 ~col:0) in
  let (ka, sa) = span_key a.span and (kb, sb) = span_key b.span in
  match Int.compare ka kb with
  | 0 -> (
      match Span.compare sa sb with
      | 0 -> (
          match String.compare a.check b.check with
          | 0 -> (
              match String.compare a.meth b.meth with
              | 0 -> String.compare a.message b.message
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

(* ----------------------------- rendering ----------------------------- *)

let diag_severity = function
  | Error -> Skipflow_frontend.Diag.Error
  | Warning -> Skipflow_frontend.Diag.Warning
  | Note -> Skipflow_frontend.Diag.Note

(** Caret-rendered form, reusing the frontend's diagnostic machinery.
    Span-less findings point at [1:1] (the caret lands on the first source
    line, which is the best a position-free fact can do). *)
let to_diag (f : t) : Skipflow_frontend.Diag.t =
  let pos =
    match f.span with
    | Some s -> { Skipflow_frontend.Lexer.line = s.Span.line; col = s.Span.col }
    | None -> { Skipflow_frontend.Lexer.line = 1; col = 1 }
  in
  Skipflow_frontend.Diag.make ?hint:f.hint ~severity:(diag_severity f.severity)
    ~stage:Skipflow_frontend.Diag.Lint pos "%s [%s]" f.message f.check

(** Compact one-line form: [3:14: warning: message [check] (method)]. *)
let pp ppf (f : t) =
  Format.fprintf ppf "%a: %s: %s [%s] (%s)" Span.pp_opt f.span
    (severity_name f.severity) f.message f.check f.meth

(* ------------------------------- JSON -------------------------------- *)

let to_json (f : t) : Json.t =
  let span_fields =
    match f.span with
    | Some s -> [ ("line", Json.Int s.Span.line); ("col", Json.Int s.Span.col) ]
    | None -> [ ("line", Json.Null); ("col", Json.Null) ]
  in
  Json.Obj
    ([ ("check", Json.Str f.check);
       ("severity", Json.Str (severity_name f.severity));
     ]
    @ span_fields
    @ [ ("method", Json.Str f.meth); ("message", Json.Str f.message) ]
    @ match f.hint with Some h -> [ ("hint", Json.Str h) ] | None -> [])

exception Malformed of string

let of_json (j : Json.t) : t =
  let str key =
    match Json.member key j with
    | Some v -> Json.to_str_exn v
    | None -> raise (Malformed ("missing field " ^ key))
  in
  let severity =
    match severity_of_name (str "severity") with
    | Some s -> s
    | None -> raise (Malformed "bad severity")
  in
  let span =
    match (Json.member "line" j, Json.member "col" j) with
    | Some (Json.Int line), Some (Json.Int col) -> Some (Span.make ~line ~col)
    | Some Json.Null, Some Json.Null -> None
    | _ -> raise (Malformed "bad span")
  in
  let hint =
    match Json.member "hint" j with
    | Some v -> Some (Json.to_str_exn v)
    | None -> None
  in
  make ?hint ?span ~check:(str "check") ~severity ~meth:(str "method")
    (str "message")

let list_to_json fs = Json.Arr (List.map to_json fs)
let list_of_json j = List.map of_json (Json.to_list_exn j)

(* The full interchange document (what [skipflow lint --format json]
   prints and the golden files pin down): version stamp first, then the
   input name, the analysis configuration, and the findings. *)

let document_to_json ~file ~analysis fs =
  Json.Obj
    [
      ("schema_version", Json.Int Json.current_schema_version);
      ("file", Json.Str file);
      ("analysis", Json.Str analysis);
      ("findings", list_to_json fs);
    ]

let document_of_json (j : Json.t) =
  (match Json.check_schema_version j with
  | Ok _ -> ()
  | Error msg -> raise (Malformed msg));
  let str key =
    match Json.member key j with
    | Some v -> Json.to_str_exn v
    | None -> raise (Malformed ("missing field " ^ key))
  in
  let findings =
    match Json.member "findings" j with
    | Some v -> list_of_json v
    | None -> raise (Malformed "missing field findings")
  in
  (str "file", str "analysis", findings)
