(** A minimal JSON tree, emitter and parser — just enough for the lint
    findings interchange format ([skipflow lint --format json]) to
    round-trip without an external dependency.

    The emitter prints deterministically (object fields in the order
    given), so golden files are stable.  The parser is a plain
    recursive-descent reader for the same subset: null, booleans, integer
    numbers, strings with the standard escapes, arrays, objects.
    Floating-point literals are rejected — nothing in a finding needs
    them. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------- emit -------------------------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(** Pretty-printed with two-space indentation and a trailing newline —
    the shape the golden CI files are diffed against. *)
let to_string (v : t) : string =
  let b = Buffer.create 256 in
  let pad n = Buffer.add_string b (String.make n ' ') in
  let rec go ind v =
    match v with
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int n -> Buffer.add_string b (string_of_int n)
    | Str s -> escape_string b s
    | Arr [] -> Buffer.add_string b "[]"
    | Arr items ->
        Buffer.add_string b "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (ind + 2);
            go (ind + 2) item)
          items;
        Buffer.add_char b '\n';
        pad ind;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_string b "{\n";
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (ind + 2);
            escape_string b k;
            Buffer.add_string b ": ";
            go (ind + 2) item)
          fields;
        Buffer.add_char b '\n';
        pad ind;
        Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

(** One line, no whitespace — for JSONL streams (the batch journal),
    where a document must not contain raw newlines. *)
let to_compact_string (v : t) : string =
  let b = Buffer.create 256 in
  let rec go v =
    match v with
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int n -> Buffer.add_string b (string_of_int n)
    | Str s -> escape_string b s
    | Arr items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char b ',';
            go item)
          items;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char b ',';
            escape_string b k;
            Buffer.add_char b ':';
            go item)
          fields;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* ------------------------------- parse ------------------------------- *)

exception Parse_error of string

type reader = { src : string; mutable pos : int }

let peek r = if r.pos < String.length r.src then Some r.src.[r.pos] else None

let fail r msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" r.pos msg))

let advance r = r.pos <- r.pos + 1

let rec skip_ws r =
  match peek r with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance r;
      skip_ws r
  | _ -> ()

let expect r c =
  match peek r with
  | Some c' when c' = c -> advance r
  | _ -> fail r (Printf.sprintf "expected %c" c)

let literal r word value =
  if
    r.pos + String.length word <= String.length r.src
    && String.sub r.src r.pos (String.length word) = word
  then begin
    r.pos <- r.pos + String.length word;
    value
  end
  else fail r (Printf.sprintf "expected %s" word)

let parse_string r =
  expect r '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek r with
    | None -> fail r "unterminated string"
    | Some '"' -> advance r
    | Some '\\' -> (
        advance r;
        match peek r with
        | Some '"' -> advance r; Buffer.add_char b '"'; go ()
        | Some '\\' -> advance r; Buffer.add_char b '\\'; go ()
        | Some '/' -> advance r; Buffer.add_char b '/'; go ()
        | Some 'n' -> advance r; Buffer.add_char b '\n'; go ()
        | Some 'r' -> advance r; Buffer.add_char b '\r'; go ()
        | Some 't' -> advance r; Buffer.add_char b '\t'; go ()
        | Some 'u' ->
            advance r;
            if r.pos + 4 > String.length r.src then fail r "short \\u escape";
            let hex = String.sub r.src r.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail r "bad \\u escape"
            in
            r.pos <- r.pos + 4;
            (* findings only ever escape control characters, which are
               single bytes; reject anything wider *)
            if code > 0xff then fail r "unsupported \\u escape"
            else Buffer.add_char b (Char.chr code);
            go ()
        | _ -> fail r "bad escape")
    | Some c ->
        advance r;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_int r =
  let start = r.pos in
  (match peek r with Some '-' -> advance r | _ -> ());
  let rec digits () =
    match peek r with
    | Some '0' .. '9' ->
        advance r;
        digits ()
    | _ -> ()
  in
  digits ();
  if r.pos = start then fail r "expected number";
  (match peek r with
  | Some ('.' | 'e' | 'E') -> fail r "floating-point numbers unsupported"
  | _ -> ());
  int_of_string (String.sub r.src start (r.pos - start))

let rec parse_value r =
  skip_ws r;
  match peek r with
  | None -> fail r "unexpected end of input"
  | Some 'n' -> literal r "null" Null
  | Some 't' -> literal r "true" (Bool true)
  | Some 'f' -> literal r "false" (Bool false)
  | Some '"' -> Str (parse_string r)
  | Some '[' ->
      advance r;
      skip_ws r;
      if peek r = Some ']' then begin
        advance r;
        Arr []
      end
      else
        let rec items acc =
          let v = parse_value r in
          skip_ws r;
          match peek r with
          | Some ',' ->
              advance r;
              items (v :: acc)
          | Some ']' ->
              advance r;
              List.rev (v :: acc)
          | _ -> fail r "expected ',' or ']'"
        in
        Arr (items [])
  | Some '{' ->
      advance r;
      skip_ws r;
      if peek r = Some '}' then begin
        advance r;
        Obj []
      end
      else
        let field () =
          skip_ws r;
          let k = parse_string r in
          skip_ws r;
          expect r ':';
          let v = parse_value r in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws r;
          match peek r with
          | Some ',' ->
              advance r;
              fields (kv :: acc)
          | Some '}' ->
              advance r;
              List.rev (kv :: acc)
          | _ -> fail r "expected ',' or '}'"
        in
        Obj (fields [])
  | Some ('-' | '0' .. '9') -> Int (parse_int r)
  | Some c -> fail r (Printf.sprintf "unexpected character %c" c)

let of_string s : t =
  let r = { src = s; pos = 0 } in
  let v = parse_value r in
  skip_ws r;
  if r.pos <> String.length s then fail r "trailing garbage";
  v

(* ----------------------------- accessors ----------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int_exn = function
  | Int n -> n
  | _ -> raise (Parse_error "expected integer")

let to_str_exn = function
  | Str s -> s
  | _ -> raise (Parse_error "expected string")

let to_list_exn = function
  | Arr l -> l
  | _ -> raise (Parse_error "expected array")

(* -------------------------- schema versioning ------------------------- *)

(** The major version stamped as a top-level ["schema_version"] on every
    JSON document the tools emit (findings, bench rows, traces, analyze
    summaries).  Bump on any incompatible shape change. *)
let current_schema_version = 1

let schema_version v =
  match member "schema_version" v with Some (Int n) -> Some n | _ -> None

(** [check_schema_version v] validates a document's version stamp against
    [expected] (default {!current_schema_version}): missing or unknown
    versions are [Error] with a message naming the mismatch, so parsers
    reject documents from an incompatible writer instead of misreading
    them. *)
let check_schema_version ?(expected = current_schema_version) v =
  match schema_version v with
  | None -> Stdlib.Error "missing schema_version"
  | Some n when n = expected -> Ok n
  | Some n ->
      Stdlib.Error
        (Printf.sprintf "unsupported schema_version %d (this tool reads version %d)"
           n expected)
