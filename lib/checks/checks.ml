(** The lint client layer: checks that consume the {e solved} PVPG — the
    fixed-point value states, enabled bits and link sets of an
    {!Skipflow_core.Engine} run — and emit {!Finding.t}s.  Every verdict
    is justified by the fixed point; no check looks at source syntax.

    This is the "Impact on Compiler Optimizations" story of the paper's
    Section 6 turned into a user-facing tool: where {!Skipflow_core.Report}
    aggregates counts for Table 1, the checks point at the offending source
    positions (threaded through lowering as {!Skipflow_ir.Span}s). *)

open Skipflow_ir
open Skipflow_core

(** Everything a check may consult.  [cha] is the coarsest baseline of the
    precision spectrum: a method CHA considers reachable is plausibly
    called from somewhere in the source, so "CHA-reachable but SkipFlow-
    dead" is interesting while "never mentioned at all" is not. *)
type ctx = {
  prog : Program.t;
  engine : Engine.t;  (** solved: {!Engine.run} has reached the fixed point *)
  cha : Skipflow_baselines.Cha.result;
  roots : Ids.Meth.Set.t;
}

let make_ctx ~(engine : Engine.t) ~(roots : Program.meth list) : ctx =
  let prog = Engine.prog_of engine in
  {
    prog;
    engine;
    cha = Skipflow_baselines.Cha.run prog ~roots;
    roots = Engine.roots engine;
  }

let qname ctx m = Program.qualified_name ctx.prog m

(* --------------------------- shared predicates ------------------------ *)

let live (f : Flow.t) = f.Flow.enabled && not (Vstate.is_empty f.Flow.state)

(** The fixed point proves the value is the [null] reference and nothing
    else: an enabled flow whose state is exactly the singleton null set. *)
let null_only (f : Flow.t) =
  f.Flow.enabled
  &&
  match f.Flow.state with
  | Vstate.Types ts -> Typeset.equal ts Typeset.null_bit
  | _ -> false

let has_non_null ts = not (Typeset.is_empty (Typeset.diff ts Typeset.null_bit))

(* ------------------------------- checks ------------------------------- *)

(** Reachable under CHA (so the source plausibly calls it) but its PVPG
    was never built: SkipFlow proved every call site that could reach it
    dead.  Roots are reachable by assumption and never reported. *)
let dead_method_findings ctx =
  let fs = ref [] in
  Program.iter_meths ctx.prog (fun (m : Program.meth) ->
      if
        m.Program.m_body <> None
        && Ids.Meth.Set.mem m.Program.m_id ctx.cha.Skipflow_baselines.Cha.reachable
        && (not (Ids.Meth.Set.mem m.Program.m_id ctx.roots))
        && not (Engine.is_reachable ctx.engine m.Program.m_id)
      then
        fs :=
          Finding.make ?span:m.Program.m_span ~check:"dead-method"
            ~severity:Finding.Warning ~meth:(qname ctx m.Program.m_id)
            (Printf.sprintf "method '%s' is never called"
               (qname ctx m.Program.m_id))
            ~hint:
              "reachable under class-hierarchy analysis but dead at the \
               SkipFlow fixed point"
          :: !fs);
  !fs

(** One-sided branch verdicts.  [bs_swapped] undoes condition
    normalization so the message speaks about the {e source} branches;
    synthetic branches (lowering artifacts around block statements and
    [while (true)]) are skipped. *)
let dead_branch_findings ctx =
  let fs = ref [] in
  List.iter
    (fun (g : Graph.method_graph) ->
      let meth = qname ctx g.Graph.g_meth.Program.m_id in
      List.iter
        (fun (bs : Graph.branch_site) ->
          if not bs.Graph.bs_synthetic then
            let add severity message hint =
              fs :=
                Finding.make ?span:bs.Graph.bs_span ~check:"dead-branch"
                  ~severity ~meth message ~hint
                :: !fs
            in
            let kind = Report.kind_name bs.Graph.bs_kind in
            match Report.branch_verdict bs with
            | Report.Both_live -> ()
            | Report.Neither ->
                add Finding.Note
                  "condition is never evaluated (it sits in dead code)"
                  (Printf.sprintf
                     "neither branch of this %s is enabled at the fixed point"
                     kind)
            | (Report.Then_only | Report.Else_only) as v ->
                (* [Then_only] = the IR else-successor is dead; with swapped
                   targets the IR then-successor is the source else-branch *)
                let cond_always_true =
                  (v = Report.Then_only) <> bs.Graph.bs_swapped
                in
                let dead = if cond_always_true then "else" else "then" in
                add Finding.Warning
                  (Printf.sprintf "condition is always %b: the %s branch is dead"
                     cond_always_true dead)
                  (Printf.sprintf
                     "the %s's filter flow for that branch has an empty value \
                      state at the fixed point"
                     kind))
        g.Graph.g_branches)
    (Engine.graphs ctx.engine);
  !fs

(** A reached checkcast whose filtered state keeps no object type: some
    non-null values arrive ([raw] has a non-null member) but none survives
    the declared-type mask, so the cast can only throw — or pass [null]
    through, when null reaches it too. *)
let impossible_cast_findings ctx =
  let fs = ref [] in
  List.iter
    (fun (g : Graph.method_graph) ->
      let meth = qname ctx g.Graph.g_meth.Program.m_id in
      List.iter
        (fun (f : Flow.t) ->
          match f.Flow.kind with
          | Flow.Cast cls when f.Flow.enabled -> (
              match f.Flow.raw with
              | Vstate.Types ts_in
                when has_non_null ts_in
                     && not (has_non_null (Vstate.type_set f.Flow.state)) ->
                  fs :=
                    Finding.make ?span:f.Flow.span ~check:"impossible-cast"
                      ~severity:Finding.Warning ~meth
                      (Printf.sprintf
                         "impossible cast to '%s': no value reaching this \
                          cast is a subtype of it"
                         (Program.class_name ctx.prog cls))
                      ~hint:
                        (if Typeset.has_null ts_in then
                           "every non-null input throws ClassCastException; \
                            only null passes through"
                         else "every input throws ClassCastException")
                    :: !fs
              | _ -> ())
          | _ -> ())
        g.Graph.g_flows)
    (Engine.graphs ctx.engine);
  !fs

(** A reached field access, array access or virtual call whose receiver's
    fixed-point value state is exactly [{null}]: the dereference throws on
    every execution that reaches it. *)
let null_deref_findings ctx =
  let fs = ref [] in
  List.iter
    (fun (g : Graph.method_graph) ->
      let meth = qname ctx g.Graph.g_meth.Program.m_id in
      let add span what =
        fs :=
          Finding.make ?span ~check:"null-deref" ~severity:Finding.Error ~meth
            (Printf.sprintf "null dereference: the receiver of this %s is \
                             always null" what)
            ~hint:"the receiver's fixed-point value state is exactly {null}"
          :: !fs
      in
      let access_what (fa : Flow.field_access) verb =
        let fld = Program.field ctx.prog fa.Flow.fa_field in
        if fld.Program.f_name = Program.elem_field_name then "array " ^ verb
        else Printf.sprintf "%s of field '%s'" verb fld.Program.f_name
      in
      List.iter
        (fun (f : Flow.t) ->
          if f.Flow.enabled then
            match f.Flow.kind with
            | Flow.Field_load fa when null_only fa.Flow.fa_recv ->
                add f.Flow.span (access_what fa "load")
            | Flow.Field_store fa when null_only fa.Flow.fa_recv ->
                add f.Flow.span (access_what fa "store")
            | Flow.Invoke inv -> (
                match inv.Flow.inv_recv with
                | Some r when inv.Flow.inv_virtual && null_only r ->
                    add f.Flow.span
                      (Printf.sprintf "call to '%s'"
                         (Program.meth_name ctx.prog inv.Flow.inv_target))
                | _ -> ())
            | _ -> ())
        g.Graph.g_flows)
    (Engine.graphs ctx.engine);
  !fs

(** A virtual call site the fixed point links to exactly one
    implementation, at a target CHA resolves to several: the precise
    type-set earned a devirtualization a syntactic tool could not. *)
let devirtualize_findings ctx =
  let fs = ref [] in
  List.iter
    (fun (g : Graph.method_graph) ->
      let meth = qname ctx g.Graph.g_meth.Program.m_id in
      List.iter
        (fun (f : Flow.t) ->
          match f.Flow.kind with
          | Flow.Invoke inv
            when inv.Flow.inv_virtual && f.Flow.enabled
                 && Ids.Meth.Set.cardinal inv.Flow.inv_linked = 1 ->
              let decl =
                (Program.meth ctx.prog inv.Flow.inv_target).Program.m_class
              in
              let cha_impls =
                List.sort_uniq Ids.Meth.compare
                  (List.filter_map
                     (fun c ->
                       Option.map
                         (fun (m : Program.meth) -> m.Program.m_id)
                         (Program.resolve ctx.prog ~recv_cls:c
                            ~target:inv.Flow.inv_target))
                     (Program.concrete_subtypes ctx.prog decl))
              in
              if List.length cha_impls > 1 then
                let target = Ids.Meth.Set.choose inv.Flow.inv_linked in
                fs :=
                  Finding.make ?span:f.Flow.span ~check:"devirtualize"
                    ~severity:Finding.Note ~meth
                    (Printf.sprintf
                       "devirtualizable call: always dispatches to '%s'"
                       (qname ctx target))
                    ~hint:
                      (Printf.sprintf
                         "the fixed point links one implementation where \
                          class-hierarchy analysis sees %d"
                         (List.length cha_impls))
                  :: !fs
          | _ -> ())
        g.Graph.g_invokes)
    (Engine.graphs ctx.engine);
  !fs

(* ------------------------------ registry ------------------------------ *)

type check = {
  id : string;
  doc : string;  (** one line for [--help] and the README table *)
  run : ctx -> Finding.t list;
}

let all : check list =
  [
    {
      id = "dead-method";
      doc = "method reachable under CHA but dead at the SkipFlow fixed point";
      run = dead_method_findings;
    };
    {
      id = "dead-branch";
      doc = "branch condition with a one-sided fixed-point verdict";
      run = dead_branch_findings;
    };
    {
      id = "impossible-cast";
      doc = "checkcast whose filtered type-set keeps no object type";
      run = impossible_cast_findings;
    };
    {
      id = "null-deref";
      doc = "field/array access or call on a receiver proved exactly null";
      run = null_deref_findings;
    };
    {
      id = "devirtualize";
      doc = "virtual call linked to a single implementation (CHA sees more)";
      run = devirtualize_findings;
    };
  ]

exception Unknown_check of string

let find id =
  match List.find_opt (fun c -> c.id = id) all with
  | Some c -> c
  | None -> raise (Unknown_check id)

(** Run the selected checks (default: all, in registry order) and return
    the findings in source order ({!Finding.compare}).  Per-check finding
    volume and time are accounted into the engine's trace under
    ["checks.<id>"] / ["checks.<id>.wall_us"]. *)
let run ?only ctx : Finding.t list =
  let checks =
    match only with None -> all | Some ids -> List.map find ids
  in
  let trace = Engine.trace_of ctx.engine in
  List.stable_sort Finding.compare
    (List.concat_map
       (fun c ->
         let fs =
           Trace.timed trace
             (Trace.counter trace (Printf.sprintf "checks.%s.wall_us" c.id))
             (fun () -> c.run ctx)
         in
         Trace.add (Trace.counter trace (Printf.sprintf "checks.%s" c.id))
           (List.length fs);
         fs)
       checks)

(* ------------------- structured facts for the oracle ------------------ *)

(** IR blocks the fixed point proves dead: the dead successor of each
    one-sided branch site, both successors of a [Neither] site.  Synthetic
    branches are {e included} — their dead side must still never execute,
    the soundness obligation does not care who created the branch.  The
    fuzz harness checks these against interpreter traces. *)
let dead_blocks ctx : (Ids.Meth.t * Ids.Block.t) list =
  List.concat_map
    (fun (g : Graph.method_graph) ->
      let m = g.Graph.g_meth.Program.m_id in
      List.concat_map
        (fun (bs : Graph.branch_site) ->
          match Report.branch_verdict bs with
          | Report.Both_live -> []
          | Report.Then_only -> [ (m, bs.Graph.bs_else_block) ]
          | Report.Else_only -> [ (m, bs.Graph.bs_then_block) ]
          | Report.Neither ->
              [ (m, bs.Graph.bs_then_block); (m, bs.Graph.bs_else_block) ])
        g.Graph.g_branches)
    (Engine.graphs ctx.engine)

(** Methods the dead-method check reports (by id), for the same oracle. *)
let dead_methods ctx : Ids.Meth.t list =
  let out = ref [] in
  Program.iter_meths ctx.prog (fun (m : Program.meth) ->
      if
        m.Program.m_body <> None
        && Ids.Meth.Set.mem m.Program.m_id ctx.cha.Skipflow_baselines.Cha.reachable
        && (not (Ids.Meth.Set.mem m.Program.m_id ctx.roots))
        && not (Engine.is_reachable ctx.engine m.Program.m_id)
      then out := m.Program.m_id :: !out);
  !out
